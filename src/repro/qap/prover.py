"""The QAP prover pipeline: from witness to the proof vector (z, h).

§A.3, "The prover": three FFT-flavoured steps costing
≈ 3·f·|C|·log²|C| —

1. evaluate A_w, B_w, C_w at the interpolation points (free: the value
   at σ_j is just the j-th constraint's p_A/p_B/p_C evaluated at w) and
   interpolate to coefficient form;
2. multiply: P_w(t) = A_w(t)·B_w(t) − C_w(t);
3. divide exactly by D(t) to get H_w(t).

``build_proof_vector`` assembles u = (z, h), the two linear functions
π_z, π_h of §3, as one flat vector (the commitment layer treats them
as a single linear function over F^(|Z|+|C|+1) with queries embedded
by ``embed_z_query`` / ``embed_h_query``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .. import telemetry
from ..poly import (
    interpolate_at_roots_of_unity,
    mat_interpolate_at_roots_of_unity,
    mat_poly_mul,
    max_ntt_size,
    pad_rows,
    poly_div_exact,
    poly_mul,
    poly_sub,
    trim,
)
from ..poly.divide import _NEWTON_CUTOFF
from .qap import QAPInstance


@dataclass
class QAPProof:
    """The Zaatar proof vector for one instance."""

    z: list[int]
    h: list[int]  # padded to qap.h_length

    @property
    def vector(self) -> list[int]:
        """The flat proof vector u = z ++ h the commitment binds."""
        return self.z + self.h


def witness_poly_evaluations(
    qap: QAPInstance, w: Sequence[int]
) -> tuple[list[int], list[int], list[int]]:
    """A_w, B_w, C_w evaluated at the prover's interpolation points.

    A_w(σ_j) = Σᵢ wᵢ·Aᵢ(σ_j) = Σᵢ wᵢ·a_{ij} = p_{j,A}(w): no polynomial
    work at all, just one linear-combination evaluation per constraint.
    Padded rows (roots mode) evaluate to zero.
    """
    field = qap.field
    evals_a: list[int] = []
    evals_b: list[int] = []
    evals_c: list[int] = []
    if qap.mode == "arithmetic":
        # leading entry is the σ₀ = 0 point where every Aᵢ vanishes
        evals_a.append(0)
        evals_b.append(0)
        evals_c.append(0)
    for constraint in qap.system.constraints:
        evals_a.append(constraint.a.evaluate(field, w))
        evals_b.append(constraint.b.evaluate(field, w))
        evals_c.append(constraint.c.evaluate(field, w))
    pad = len(qap.prover_points) - len(evals_a)
    if pad:
        zeros = [0] * pad
        evals_a += zeros
        evals_b += zeros
        evals_c += zeros
    return evals_a, evals_b, evals_c


def compute_h(qap: QAPInstance, w: Sequence[int]) -> list[int]:
    """Coefficients of H_w(t) = P_w(t)/D(t), padded to ``qap.h_length``.

    Raises ``ValueError`` (from exact division) if w does not satisfy
    the constraints — by Claim A.1 divisibility is equivalent to
    satisfiability.
    """
    field = qap.field
    with telemetry.span("qap.witness_evals"):
        evals_a, evals_b, evals_c = witness_poly_evaluations(qap, w)
    with telemetry.span("qap.interpolate", mode=qap.mode):
        if qap.mode == "roots":
            poly_a = interpolate_at_roots_of_unity(field, evals_a)
            poly_b = interpolate_at_roots_of_unity(field, evals_b)
            poly_c = interpolate_at_roots_of_unity(field, evals_c)
        else:
            tree = qap.subproduct_tree
            poly_a = tree.interpolate(evals_a)
            poly_b = tree.interpolate(evals_b)
            poly_c = tree.interpolate(evals_c)
    with telemetry.span("qap.multiply"):
        p_w = poly_sub(field, poly_mul(field, poly_a, poly_b), poly_c)
    with telemetry.span("qap.divide", mode=qap.mode):
        if qap.mode == "roots":
            h = _divide_by_subgroup_vanishing(field, p_w, qap.m)
        elif qap.m >= _NEWTON_CUTOFF:
            # batch-amortized fast division: the QAP caches rev(D)⁻¹,
            # so instances after the first skip the Newton iteration
            h = poly_div_exact(
                field, p_w, qap.divisor_poly, inv_rev_den=qap.divisor_inverse_series()
            )
        else:
            h = poly_div_exact(field, p_w, qap.divisor_poly)
    if len(h) > qap.h_length:
        raise AssertionError("H(t) degree exceeds the protocol bound")
    return h + [0] * (qap.h_length - len(h))


def _divide_by_subgroup_vanishing(field, p_w: list[int], m: int) -> list[int]:
    """Exact division by t^m − 1 in O(deg) operations.

    From P = (t^m − 1)·H: p_k = h_{k−m} − h_k, so h_{k−m} = p_k + h_k,
    walking k downward from deg(P).
    """
    p = field.p
    if not p_w:
        return []
    deg_p = len(p_w) - 1
    if deg_p < m:
        if any(p_w):
            raise ValueError("polynomial is not divisible by t^m - 1")
        return []
    h = [0] * (deg_p - m + 1)
    for k in range(deg_p, m - 1, -1):
        h[k - m] = (p_w[k] + (h[k] if k < len(h) else 0)) % p
    # verify the low-order remainder vanishes: p_k = −h_k for k < m
    for k in range(min(m, len(p_w))):
        expected = (-h[k]) % p if k < len(h) else 0
        if p_w[k] % p != expected:
            raise ValueError(
                "polynomial is not divisible by t^m - 1 "
                "(witness does not satisfy the constraints?)"
            )
    return h


def _mat_divide_by_subgroup_vanishing(field, p_rows, m: int):
    """Batched telescoped division of every row by t^m − 1.

    For deg(P) ≤ 2m − 1 the recurrence h_{k−m} = p_k + h_k collapses:
    every h index on the right is ≥ m, where h vanishes, so the
    quotient is literally ``P[m:2m]`` and the remainder condition is
    ``P[:m] + P[m:2m] ≡ 0`` — one batched add and a zero test instead
    of a per-coefficient walk.  Returns one length-m quotient row (the
    true quotient plus trailing zeros) per input row; a row that fails
    the remainder check yields the exact ``ValueError`` the scalar
    :func:`_divide_by_subgroup_vanishing` raises for it (failure
    isolation — one bad witness never poisons its batchmates).
    """
    width = 2 * m
    padded = pad_rows(p_rows, width)
    heads = [row[:m] for row in padded]
    tails = [row[m:] for row in padded]
    checks = field.mat_add(heads, tails)
    out: list = []
    for i, check in enumerate(checks):
        if any(check):
            # re-run the scalar division for the row to reproduce its
            # exact exception (deg < m vs nonzero-remainder message)
            try:
                _divide_by_subgroup_vanishing(field, trim(list(p_rows[i])), m)
            except ValueError as exc:
                out.append(exc)
                continue
            raise AssertionError(
                "batched remainder check disagreed with scalar division"
            )  # pragma: no cover - the two are algebraically identical
        out.append(tails[i])
    return out


def _compute_h_rows_sequential(qap: QAPInstance, witnesses):
    """Per-witness fallback: ``compute_h`` each row, capturing failures."""
    out: list = []
    for w in witnesses:
        try:
            out.append(compute_h(qap, w))
        except ValueError as exc:
            out.append(exc)
    return out


def compute_h_batch(qap: QAPInstance, witnesses: Sequence[Sequence[int]]) -> list:
    """H_w(t) rows for many witnesses against one fixed QAP.

    The batch-axis twin of :func:`compute_h`: the interpolate/multiply/
    divide pipeline runs as stacked 2-D kernels (one plan, one array
    program per step — see ``repro.poly.batch``), and each returned
    entry is either the padded coefficient list ``compute_h`` returns
    for that witness or the ``ValueError`` it raises (failure
    isolation).  Results are bit-identical to the sequential route;
    ``tests/qap/test_prover.py`` pins this per mode.
    """
    batch = len(witnesses)
    if batch == 0:
        return []
    if batch == 1:
        return _compute_h_rows_sequential(qap, witnesses)
    field = qap.field
    with telemetry.span("qap.witness_evals", rows=batch):
        triples = [witness_poly_evaluations(qap, w) for w in witnesses]
    evals_a = [t[0] for t in triples]
    evals_b = [t[1] for t in triples]
    evals_c = [t[2] for t in triples]
    if qap.mode == "roots":
        m = qap.m
        if 2 * m > max_ntt_size(field):  # pragma: no cover - tiny two-adicity
            return _compute_h_rows_sequential(qap, witnesses)
        with telemetry.span("qap.interpolate", mode=qap.mode, rows=batch):
            rows_a = mat_interpolate_at_roots_of_unity(field, evals_a)
            rows_b = mat_interpolate_at_roots_of_unity(field, evals_b)
            rows_c = mat_interpolate_at_roots_of_unity(field, evals_c)
        with telemetry.span("qap.multiply", rows=batch):
            prod = mat_poly_mul(field, rows_a, rows_b)  # width 2m − 1
            p_rows = field.mat_sub(pad_rows(prod, 2 * m), pad_rows(rows_c, 2 * m))
        with telemetry.span("qap.divide", mode=qap.mode, rows=batch):
            h_rows = _mat_divide_by_subgroup_vanishing(field, p_rows, m)
    else:
        with telemetry.span("qap.interpolate", mode=qap.mode, rows=batch):
            tree = qap.subproduct_tree
            polys_a = [tree.interpolate(e) for e in evals_a]
            polys_b = [tree.interpolate(e) for e in evals_b]
            polys_c = [tree.interpolate(e) for e in evals_c]
        with telemetry.span("qap.multiply", rows=batch):
            la = max((len(r) for r in polys_a), default=0)
            lb = max((len(r) for r in polys_b), default=0)
            if la and lb:
                prod = mat_poly_mul(
                    field, pad_rows(polys_a, la), pad_rows(polys_b, lb)
                )
            else:
                prod = [[] for _ in range(batch)]
            width = max(
                la + lb - 1 if la and lb else 0,
                max((len(r) for r in polys_c), default=0),
            )
            p_rows = field.mat_sub(pad_rows(prod, width), pad_rows(polys_c, width))
        with telemetry.span("qap.divide", mode=qap.mode, rows=batch):
            inv_rev = (
                qap.divisor_inverse_series() if qap.m >= _NEWTON_CUTOFF else None
            )
            h_rows = []
            for row in p_rows:
                try:
                    p_w = trim(list(row))
                    if inv_rev is not None:
                        h = poly_div_exact(
                            field, p_w, qap.divisor_poly, inv_rev_den=inv_rev
                        )
                    else:
                        h = poly_div_exact(field, p_w, qap.divisor_poly)
                    h_rows.append(h)
                except ValueError as exc:
                    h_rows.append(exc)
    out: list = []
    for h in h_rows:
        if isinstance(h, Exception):
            out.append(h)
            continue
        h = trim(list(h))  # batched rows carry fixed-width zero padding
        if len(h) > qap.h_length:
            raise AssertionError("H(t) degree exceeds the protocol bound")
        out.append(h + [0] * (qap.h_length - len(h)))
    return out


def build_proof_vector(qap: QAPInstance, witness: Sequence[int]) -> QAPProof:
    """u = (z, h) from a full canonical assignment (witness[0] == 1)."""
    z = list(witness[1 : qap.n_prime + 1])
    h = compute_h(qap, witness)
    return QAPProof(z=z, h=h)


def embed_z_query(qap: QAPInstance, q: Sequence[int]) -> list[int]:
    """Lift a πz query (length |Z|) into full-proof-vector coordinates."""
    if len(q) != qap.n_prime:
        raise ValueError(f"z-query length {len(q)} != {qap.n_prime}")
    return list(q) + [0] * qap.h_length


def embed_h_query(qap: QAPInstance, q: Sequence[int]) -> list[int]:
    """Lift a πh query (length |C|+1) into full-proof-vector coordinates."""
    if len(q) != qap.h_length:
        raise ValueError(f"h-query length {len(q)} != {qap.h_length}")
    return [0] * qap.n_prime + list(q)
