"""QAP construction, prover pipeline, and verifier query generation."""

from .prover import (
    QAPProof,
    build_proof_vector,
    compute_h,
    embed_h_query,
    embed_z_query,
    witness_poly_evaluations,
)
from .qap import QAPInstance, build_qap
from .verifier import (
    CircuitQueries,
    InstanceScalars,
    circuit_queries,
    divisibility_check,
    instance_scalars,
)

__all__ = [
    "CircuitQueries",
    "QAPInstance",
    "QAPProof",
    "build_proof_vector",
    "build_qap",
    "circuit_queries",
    "compute_h",
    "InstanceScalars",
    "divisibility_check",
    "embed_h_query",
    "instance_scalars",
    "embed_z_query",
    "witness_poly_evaluations",
]
