"""Deployment-grid chaos orchestrator (``repro deploy``).

The §5 economics rest on one long-lived prover amortized over many
verifiers — real verifiers, on real networks, that crash and reconnect.
This module stands up that deployment end to end for a grid of
parameter cells and checks, per cell, that the churn machinery keeps
its books:

* one :class:`~repro.argument.GatewayServer` (optionally sharded) and
  ``verifiers`` forked verifier processes, each driving ``sessions``
  full argument sessions;
* an emulated WAN link (:data:`LINK_PROFILES`) wrapped around *both*
  sides of every connection, so latency/jitter/bandwidth/loss ride the
  full round trip;
* seeded churn: per session, a deterministic draw picks ``none`` (run
  to completion), ``drop`` (the commit frame vanishes → the verifier
  reconnects under its gateway resume token), or ``kill`` (the
  verifier process dies mid-handshake → the parked session must expire
  cleanly and the orchestrator respawns the process for the remaining
  sessions);
* per-cell invariants, checked after drain: no leaked sessions or
  leases (:meth:`GatewayServer.leak_check`), the session ledger
  balances (``started == ok + errors``), the park ledger closes
  (``parked == resumed + reaped``), and every session the verifiers
  report complete actually verified.

The consolidated artifact (``benchmarks/out/BENCH_deploy.json``) is
schema-stamped via :func:`repro.benchgate.bench_metadata` so
``repro bench-check`` can diff deploy runs like any other figure.
"""

from __future__ import annotations

import os
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable

from .argument import (
    ArgumentConfig,
    Deadlines,
    FaultPlan,
    FaultRule,
    GatewayServer,
    LinkProfile,
    ProgramRegistry,
    ProtocolViolation,
    RetryPolicy,
    program_hash,
    verify_remote,
)
from .argument.net import recv_frame, send_frame

#: named WAN shapes for the grid's ``link`` axis (LinkProfile kwargs;
#: the seed is supplied per side at wrap time)
LINK_PROFILES: dict[str, dict[str, Any]] = {
    "lan": {},
    "wan-50ms": {"latency": 0.05, "jitter": 0.005},
    "wan-100ms": {"latency": 0.1, "jitter": 0.01},
    "wan-100ms-lossy": {"latency": 0.1, "jitter": 0.01, "loss": 0.01},
    "dsl-1mbps": {"latency": 0.03, "jitter": 0.005, "bandwidth": 125_000},
}

#: exit code a verifier process dies with when the churn plan says so
KILLED_EXIT = 17


@dataclass(frozen=True)
class DeployCell:
    """One point of the deployment grid."""

    batch: int = 2
    shards: int = 0
    link: str = "lan"
    churn: float = 0.0
    verifiers: int = 2
    sessions: int = 2

    def __post_init__(self):
        if self.link not in LINK_PROFILES:
            raise ValueError(
                f"unknown link profile {self.link!r} "
                f"(choose from {', '.join(sorted(LINK_PROFILES))})"
            )
        if not 0.0 <= self.churn <= 1.0:
            raise ValueError("churn is a probability")

    @property
    def key(self) -> str:
        """Stable identifier naming this cell in results and logs."""
        return (
            f"b{self.batch}_s{self.shards}_{self.link}"
            f"_c{round(self.churn * 100)}_v{self.verifiers}x{self.sessions}"
        )


def grid_cells(
    *,
    batches: list[int],
    shards: list[int],
    links: list[str],
    churns: list[float],
    verifiers: int,
    sessions: int,
) -> list[DeployCell]:
    """The full cartesian grid over the swept axes."""
    return [
        DeployCell(
            batch=b, shards=s, link=l, churn=c,
            verifiers=verifiers, sessions=sessions,
        )
        for b in batches
        for s in shards
        for l in links
        for c in churns
    ]


def churn_plan(cell: DeployCell, seed: int, slot: int) -> list[str]:
    """Seeded per-session decisions for one verifier slot.

    Each decision draws from its own string-seeded RNG so the plan is a
    pure function of ``(seed, cell, slot, session)`` — the orchestrator
    and any replayer agree on it without shared state.
    """
    decisions = []
    for session in range(cell.sessions):
        rng = random.Random(f"deploy:{seed}:{cell.key}:{slot}:{session}")
        if rng.random() < cell.churn:
            decisions.append("kill" if rng.random() < 0.5 else "drop")
        else:
            decisions.append("none")
    return decisions


def _hello_frame(program, config: ArgumentConfig) -> dict:
    return {
        "type": "hello",
        "program": program_hash(program),
        "params": {
            "delta": config.params.delta,
            "rho_lin": config.params.rho_lin,
            "rho": config.params.rho,
        },
        "qap_mode": config.qap_mode,
        "seed": config.seed.hex(),
    }


def _flush(queue, record: dict) -> None:
    """Enqueue and flush (the feeder thread must drain before _exit)."""
    queue.put(record)


def _verifier_main(
    slot: int,
    start: int,
    decisions: list[str],
    address: tuple,
    program,
    config: ArgumentConfig,
    batches: list[list[list[int]]],
    link_kwargs: dict,
    seed: int,
    deadlines: Deadlines,
    queue,
) -> None:
    """One verifier process: drive sessions ``start..`` per the plan.

    Runs in a forked child.  Each session's outcome is enqueued before
    the next starts, so after a ``kill`` the orchestrator can count the
    records and respawn the slot at the right session index.
    """
    link = (
        LinkProfile(**link_kwargs, seed=seed * 1009 + slot)
        if link_kwargs
        else None
    )
    for index in range(start, len(decisions)):
        decision = decisions[index]
        if decision == "kill":
            # die mid-handshake: connect, say hello, vanish.  The
            # gateway parks the session; nobody ever resumes it, so the
            # reaper must expire it and close the ledger.
            try:
                with socket.create_connection(address, timeout=10) as sock:
                    sock.settimeout(10)
                    send_frame(sock, _hello_frame(program, config))
                    reply = recv_frame(sock)
                    started = reply.get("type") == "hello-ok"
            except (OSError, ProtocolViolation):
                started = False
            _flush(
                queue,
                {"slot": slot, "session": index, "outcome": "killed",
                 "started": started},
            )
            queue.close()
            queue.join_thread()
            os._exit(KILLED_EXIT)
        plan = (
            FaultPlan([FaultRule(frame=1, action="drop", direction="send")])
            if decision == "drop"
            else None
        )

        def wrapper(sock, _plan=plan, _link=link):
            if _link is not None:
                sock = _link.wrap(sock)
            if _plan is not None:
                sock = _plan.wrap(sock)
            return sock

        record = {"slot": slot, "session": index, "outcome": "ok",
                  "decision": decision}
        try:
            result = verify_remote(
                program,
                batches[index],
                address,
                config,
                retry=RetryPolicy(
                    max_attempts=4, base_delay=0.3, seed=seed * 31 + slot
                ),
                deadlines=deadlines,
                socket_wrapper=wrapper,
            )
            record["accepted"] = result.all_accepted
            record["attempts"] = result.attempts
            record["resumed"] = result.resumed
        except (ProtocolViolation, OSError) as exc:
            # under a lossy link a session can die non-resumably (e.g.
            # the connection cut after the challenge went out); that is
            # a counted error on both sides, not an invariant breach
            record["outcome"] = "error"
            record["error"] = getattr(exc, "code", None) or type(exc).__name__
        _flush(queue, record)


def run_cell(
    program,
    config: ArgumentConfig,
    cell: DeployCell,
    *,
    seed: int = 0,
    input_generator: Callable[[random.Random], list[int]],
    read_timeout: float = 30.0,
    resume_timeout: float = 3.0,
    log: Callable[[str], None] = lambda _msg: None,
) -> dict:
    """Run one grid cell end to end and return its measured row.

    The gateway is built first (its listener binds in the constructor,
    so the address is known), the verifier processes are forked before
    ``start()`` (they inherit the compiled program copy-on-write and
    never touch the gateway's threads), and the cell tears down through
    the gateway's full drain path so the invariants below are checked
    against a *quiesced* server.
    """
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    link_kwargs = LINK_PROFILES[cell.link]
    registry = ProgramRegistry()
    registry.register(program, config)
    gw = GatewayServer(
        registry,
        max_sessions=cell.verifiers + 2,
        shards=cell.shards,
        deadlines=Deadlines(read=read_timeout),
        resume_timeout=resume_timeout,
        link=LinkProfile(**link_kwargs, seed=seed) if link_kwargs else None,
        trace_sessions=False,
        metrics_seed=seed,
    )

    # deterministic inputs per (slot, session, instance)
    plans = {slot: churn_plan(cell, seed, slot) for slot in range(cell.verifiers)}
    batches = {
        slot: [
            [
                input_generator(
                    random.Random(f"inputs:{seed}:{cell.key}:{slot}:{s}:{i}")
                )
                for i in range(cell.batch)
            ]
            for s in range(cell.sessions)
        ]
        for slot in range(cell.verifiers)
    }
    deadlines = Deadlines(connect=10.0, read=read_timeout)
    queue = ctx.Queue()

    def spawn(slot: int, start: int):
        proc = ctx.Process(
            target=_verifier_main,
            args=(slot, start, plans[slot], gw.address, program, config,
                  batches[slot], link_kwargs, seed, deadlines, queue),
            daemon=True,
        )
        proc.start()
        return proc

    records: list[dict] = []

    def drain(timeout: float = 0.0) -> None:
        import queue as queue_mod

        while True:
            try:
                records.append(queue.get(timeout=timeout))
            except queue_mod.Empty:
                return

    started_at = time.monotonic()
    procs = {slot: spawn(slot, 0) for slot in range(cell.verifiers)}
    respawns = 0
    with gw:
        done: set[int] = set()
        while len(done) < cell.verifiers:
            drain(timeout=0.1)
            for slot, proc in list(procs.items()):
                if slot in done or proc.is_alive():
                    continue
                proc.join()
                if proc.exitcode == KILLED_EXIT:
                    drain()  # the kill record is flushed before _exit
                    finished = sum(1 for r in records if r["slot"] == slot)
                    respawns += 1
                    log(
                        f"[{cell.key}] slot {slot} died on schedule "
                        f"(session {finished - 1}); respawning at {finished}"
                    )
                    procs[slot] = spawn(slot, finished)
                elif proc.exitcode == 0:
                    done.add(slot)
                else:  # pragma: no cover - a verifier crash is a bug
                    done.add(slot)
                    records.append(
                        {"slot": slot, "session": -1, "outcome": "crashed",
                         "exitcode": proc.exitcode}
                    )
        # every parked kill must expire before the books are audited
        deadline = time.monotonic() + resume_timeout + 5.0
        while gw.pending_resumes and time.monotonic() < deadline:
            time.sleep(0.1)
        # lease hygiene is a *live* property: with every session done,
        # the shard pool must be back at full strength (each park
        # released its lease; each resume leased and released again)
        live_shards = gw.leak_check()["shards_alive"]
    wall = time.monotonic() - started_at
    drain()

    stats = gw.stats
    counters = gw.metrics.snapshot()["counters"]
    leak = gw.leak_check()

    total = cell.verifiers * cell.sessions
    by_outcome: dict[str, int] = {}
    error_codes: dict[str, int] = {}
    for rec in records:
        by_outcome[rec["outcome"]] = by_outcome.get(rec["outcome"], 0) + 1
        if rec["outcome"] == "error":
            code = rec.get("error", "unknown")
            error_codes[code] = error_codes.get(code, 0) + 1
    completed = [r for r in records if r["outcome"] == "ok"]
    parked = counters.get("gateway.parked", 0)
    resumed = counters.get("gateway.resumed", 0)
    expired = counters.get("gateway.reaped.expired", 0)

    invariants = {
        # post-drain hygiene: nothing admitted, parked, slotted, or
        # (sharded) short a worker lease
        "no_leaked_sessions": leak["admitted"] == 0
        and leak["pending_resumes"] == 0
        and not leak["program_slots"],
        "no_leaked_leases": live_shards is None
        or live_shards == cell.shards,
        # the churn ledger balances even though sessions parked,
        # resumed, expired, and died mid-flight
        "ledger_balanced": stats.get("sessions_started", 0)
        == stats.get("sessions_ok", 0) + stats.get("session_errors", 0),
        "park_ledger_closed": parked == resumed + expired,
        # every session a verifier reports complete actually verified
        "all_completed_verified": all(r.get("accepted") for r in completed),
        # every verifier session is accounted for exactly once
        "all_sessions_reported": len(records) == total,
    }

    row = {
        "cell": {
            "batch": cell.batch, "shards": cell.shards, "link": cell.link,
            "churn": cell.churn, "verifiers": cell.verifiers,
            "sessions": cell.sessions,
        },
        "wall_seconds": round(wall, 3),
        "sessions_per_second": round(total / wall, 3) if wall > 0 else 0.0,
        "outcomes": by_outcome,
        "client_error_codes": error_codes,
        "gateway": {
            "started": stats.get("sessions_started", 0),
            "ok": stats.get("sessions_ok", 0),
            "errors": stats.get("session_errors", 0),
            "parked": parked,
            "resumed": resumed,
            "expired": expired,
            "reaped_idle": counters.get("gateway.reaped.idle", 0),
        },
        "respawns": respawns,
        "invariants": invariants,
        "invariants_ok": all(invariants.values()),
    }
    return row


def run_grid(
    program,
    config: ArgumentConfig,
    cells: list[DeployCell],
    *,
    seed: int = 0,
    input_generator: Callable[[random.Random], list[int]],
    read_timeout: float = 30.0,
    resume_timeout: float = 3.0,
    log: Callable[[str], None] = lambda _msg: None,
) -> dict:
    """Run every cell and consolidate the grid into one results dict."""
    results: dict[str, Any] = {}
    for cell in cells:
        log(
            f"cell {cell.key}: {cell.verifiers} verifiers x "
            f"{cell.sessions} sessions, batch {cell.batch}, "
            f"link {cell.link}, churn {cell.churn:.0%}, "
            f"shards {cell.shards}"
        )
        row = run_cell(
            program, config, cell,
            seed=seed, input_generator=input_generator,
            read_timeout=read_timeout, resume_timeout=resume_timeout,
            log=log,
        )
        status = "ok" if row["invariants_ok"] else "INVARIANT VIOLATION"
        log(
            f"  -> {row['sessions_per_second']:.2f} sessions/s, "
            f"{row['gateway']['resumed']} resumed, "
            f"{row['gateway']['expired']} expired, {status}"
        )
        results[cell.key] = row
    results["grid_ok"] = all(
        row["invariants_ok"] for row in results.values() if isinstance(row, dict)
    )
    return results
