"""Hierarchical tracing core: spans, counters, and the global tracer.

The paper's whole evaluation (§5, Figures 4-9) is cost accounting —
prover phase breakdowns, verifier setup-vs-per-instance splits, bytes
on the wire.  This module is the measurement substrate those numbers
come from: a tree of **spans** (each recording wall-clock *and*
process-CPU seconds) with **counters** attached to whichever span was
innermost when the counted event happened.

Telemetry is *disabled by default* and the disabled path is designed
to cost nothing on hot loops: :func:`count` is a single global read
and ``None`` check, and ``PrimeField`` itself is never instrumented
(see ``repro.field.counting`` for the opt-in wrapper).  Enable a trace
with :func:`enable`/:func:`disable` or the :func:`session` context
manager; protocol code then creates spans through :func:`span`,
:func:`start_span`/:func:`end_span`, or the :func:`traced` decorator.

Thread model: each thread has its own active-span stack (spans formed
on the prover-server thread become their own roots of the trace
forest), while the finished-span list and the id counter are shared
under a lock.  Forked worker processes (``argument.parallel``) export
their span records and the parent re-inserts them with
:meth:`Tracer.adopt`.

Distributed traces: every :class:`Tracer` carries a ``trace_id`` that
is stamped onto each span it starts, and a thread may *override* the
installed tracer with :func:`thread_tracer` — that is how a
``ProverServer`` session records its spans into a private per-session
tracer (created with the client's propagated ``trace_id``) without
touching whatever global trace the server process may be running.
Span records exported by :meth:`Tracer.records_since` carry an
``origin`` key identifying the exporting tracer+process, which makes
:meth:`Tracer.adopt` idempotent: re-adopting the same records (a
retried worker result, a replayed session trace) inserts nothing
twice.
"""

from __future__ import annotations

import functools
import os
import secrets
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random, not seed-derived)."""
    return secrets.token_hex(8)


class Span:
    """One timed region: name, parent link, two clocks, counters."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "attrs",
        "counters",
        "wall_seconds",
        "cpu_seconds",
        "_t0_wall",
        "_t0_cpu",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        attrs: dict[str, Any] | None = None,
        trace_id: str | None = None,
    ):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.attrs = attrs or {}
        self.counters: dict[str, int | float] = {}
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self._t0_wall = 0.0
        self._t0_cpu = 0.0

    def count(self, name: str, n: int | float = 1) -> None:
        """Add ``n`` to this span's counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + n

    def to_record(self) -> dict[str, Any]:
        """The JSONL representation (see docs/OBSERVABILITY.md)."""
        record: dict[str, Any] = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "wall_s": self.wall_seconds,
            "cpu_s": self.cpu_seconds,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
        if self.counters:
            record["counters"] = dict(self.counters)
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "Span":
        """Rebuild a span from its JSONL record.

        Unknown keys are ignored — records written by a newer schema
        (or stamped with transport metadata like ``origin``) must stay
        readable, so only the fields this version knows are consumed.
        """
        span = cls(
            record["name"],
            record["id"],
            record.get("parent"),
            dict(record.get("attrs") or {}),
            trace_id=record.get("trace_id"),
        )
        span.wall_seconds = record.get("wall_s", 0.0)
        span.cpu_seconds = record.get("cpu_s", 0.0)
        span.counters = dict(record.get("counters") or {})
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
            f"wall={self.wall_seconds:.6f}s, cpu={self.cpu_seconds:.6f}s)"
        )


class Tracer:
    """Collects finished spans; owns the per-thread active-span stacks."""

    def __init__(self, trace_id: str | None = None):
        self._lock = threading.Lock()
        self._next_id = 1
        self._local = threading.local()
        #: the distributed-trace id every span of this tracer carries;
        #: propagated over the wire so a remote session's spans stitch
        #: into the same logical trace
        self.trace_id = trace_id or new_trace_id()
        #: private identity of THIS tracer object (never propagated);
        #: combined with the pid it keys adoption idempotence — forked
        #: workers share the uid but differ in pid
        self._uid = secrets.token_hex(4)
        #: (origin, original span id) -> locally assigned id, for every
        #: record ever adopted; makes re-adoption a no-op
        self._adopted_ids: dict[tuple[str, int], int] = {}
        #: finished spans, in completion (post-) order
        self.spans: list[Span] = []
        #: counts that arrived while no span was active on the thread
        self.orphan_counters: dict[str, int | float] = {}

    # -- span lifecycle -----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def start(self, name: str, **attrs: Any) -> Span:
        """Open a span as a child of this thread's innermost span."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = Span(name, span_id, parent_id, attrs, trace_id=self.trace_id)
        stack.append(span)
        span._t0_wall = time.perf_counter()
        span._t0_cpu = time.process_time()
        return span

    def end(self, span: Span) -> Span:
        """Close a span, fixing both clocks, and record it."""
        cpu = time.process_time() - span._t0_cpu
        wall = time.perf_counter() - span._t0_wall
        span.cpu_seconds = cpu
        span.wall_seconds = wall
        stack = self._stack()
        while stack:
            top = stack.pop()
            if top is span:
                break
        with self._lock:
            self.spans.append(span)
        return span

    def current_span(self) -> Span | None:
        """This thread's innermost active span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- counters ------------------------------------------------------------

    def count(self, name: str, n: int | float = 1) -> None:
        """Attribute ``n`` to the innermost active span of this thread."""
        span = self.current_span()
        if span is not None:
            span.count(name, n)
        else:
            with self._lock:
                self.orphan_counters[name] = self.orphan_counters.get(name, 0) + n

    def total_counters(self) -> dict[str, int | float]:
        """Every counter summed over all finished spans (plus orphans)."""
        totals: dict[str, int | float] = dict(self.orphan_counters)
        with self._lock:
            spans = list(self.spans)
        for span in spans:
            for key, value in span.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # -- queries -------------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        """All finished spans with the given name."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    # -- fork support (argument.parallel) -------------------------------------

    def mark(self) -> int:
        """A position in the finished-span list, for ``records_since``."""
        with self._lock:
            return len(self.spans)

    def origin(self) -> str:
        """Identity of this tracer *in this process* (uid:pid).

        Stamped onto exported records so :meth:`adopt` can recognise a
        record set it has seen before.  Forked workers inherit the uid
        but run under their own pid, so two workers exporting spans
        with colliding ids never dedupe against each other.
        """
        return f"{self._uid}:{os.getpid()}"

    def records_since(self, mark: int) -> list[dict[str, Any]]:
        """JSONL records of every span finished after ``mark``.

        Each record carries an ``origin`` key (this tracer's identity
        in this process) so the adopting side can deduplicate.
        """
        origin = self.origin()
        with self._lock:
            records = [s.to_record() for s in self.spans[mark:]]
        for record in records:
            record["origin"] = origin
        return records

    def adopt(
        self, records: list[dict[str, Any]], parent_id: int | None = None
    ) -> list[Span]:
        """Re-insert span records exported by another tracer/process.

        Exported ids collide with local ones (and across forked
        workers, which each inherit the id counter at fork time), so
        adopted spans get fresh ids; parent links *inside* the record
        set are remapped, and links to spans that are not part of it
        are redirected to ``parent_id`` (the local span the remote work
        ran under).

        Adoption is idempotent per record: a record whose
        ``(origin, id)`` was adopted before is skipped — but still
        contributes its previously assigned local id to the remapping,
        so a later adopt of its children links them correctly.  Records
        without an ``origin`` (hand-built) are never deduplicated.
        Returns only the spans actually inserted by this call.
        """
        with self._lock:
            mapping: dict[int, int] = {}
            fresh: list[dict[str, Any]] = []
            for record in records:
                origin = record.get("origin")
                key = (origin, record["id"]) if origin is not None else None
                if key is not None and key in self._adopted_ids:
                    mapping[record["id"]] = self._adopted_ids[key]
                    continue
                mapping[record["id"]] = self._next_id
                if key is not None:
                    self._adopted_ids[key] = self._next_id
                self._next_id += 1
                fresh.append(record)
            adopted = []
            for record in fresh:
                span = Span.from_record(record)
                span.span_id = mapping[record["id"]]
                old_parent = record.get("parent")
                if old_parent in mapping:
                    span.parent_id = mapping[old_parent]
                else:
                    span.parent_id = parent_id
                self.spans.append(span)
                adopted.append(span)
            return adopted


# -- module-level API ----------------------------------------------------------

_tracer: Tracer | None = None
_install_lock = threading.Lock()
# per-thread tracer override (ProverServer session tracing); checked
# before the global tracer by every entry point below
_thread_ctx = threading.local()


def enabled() -> bool:
    """True while a tracer is installed (globally or on this thread)."""
    return current() is not None


def current() -> Tracer | None:
    """This thread's tracer: the thread override if one is bound
    (:func:`thread_tracer`), else the globally installed tracer, else
    None when telemetry is off."""
    tracer = getattr(_thread_ctx, "tracer", None)
    return tracer if tracer is not None else _tracer


@contextmanager
def thread_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Bind ``tracer`` as THIS thread's tracer for the block.

    Spans and counters fired on this thread land in ``tracer`` instead
    of the globally installed one (other threads are unaffected) —
    this is how a prover-server session records into a private
    per-session tracer whose records ship back to the client.
    Overrides nest; the previous binding is restored on exit.
    """
    prev = getattr(_thread_ctx, "tracer", None)
    _thread_ctx.tracer = tracer
    try:
        yield tracer
    finally:
        _thread_ctx.tracer = prev


def enable() -> Tracer:
    """Install a fresh tracer (replacing any previous one)."""
    global _tracer
    with _install_lock:
        _tracer = Tracer()
        return _tracer


def disable() -> Tracer | None:
    """Uninstall and return the tracer (None if already off)."""
    global _tracer
    with _install_lock:
        tracer, _tracer = _tracer, None
        return tracer


@contextmanager
def session() -> Iterator[Tracer]:
    """Enable telemetry for a block; disables (and yields) the tracer."""
    global _tracer
    tracer = enable()
    try:
        yield tracer
    finally:
        with _install_lock:
            if _tracer is tracer:
                _tracer = None


def count(name: str, n: int | float = 1) -> None:
    """Attribute ``n`` to the current span; free no-op when disabled."""
    tracer = current()
    if tracer is not None:
        tracer.count(name, n)


def start_span(name: str, **attrs: Any) -> Span | None:
    """Open a span (None when disabled); pair with :func:`end_span`."""
    tracer = current()
    return tracer.start(name, **attrs) if tracer is not None else None


def end_span(span: Span | None) -> None:
    """Close a span opened by :func:`start_span`."""
    tracer = current()
    if tracer is not None and span is not None:
        tracer.end(span)


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | None]:
    """Context manager form; yields the span (None when disabled)."""
    tracer = current()
    if tracer is None:
        yield None
        return
    sp = tracer.start(name, **attrs)
    try:
        yield sp
    finally:
        tracer.end(sp)


def traced(name: str | None = None) -> Callable:
    """Decorator: wrap every call of the function in a span."""

    def decorate(fn: Callable) -> Callable:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = current()
            if tracer is None:
                return fn(*args, **kwargs)
            sp = tracer.start(label)
            try:
                return fn(*args, **kwargs)
            finally:
                tracer.end(sp)

        return wrapper

    return decorate
