"""Unified telemetry: hierarchical spans, op/byte counters, JSONL traces.

See docs/OBSERVABILITY.md for the span taxonomy (names map onto the
paper's Figure-5 phase columns), counter names, and the trace file
schema.  Telemetry is off by default; ``repro trace`` and the
benchmark harness enable it around one run.
"""

from .core import (
    Span,
    Tracer,
    count,
    current,
    disable,
    enable,
    enabled,
    end_span,
    session,
    span,
    start_span,
    traced,
)
from .export import (
    TRACE_VERSION,
    Trace,
    read_jsonl,
    render_counter_totals,
    render_tree,
    trace_records,
    write_jsonl,
)

__all__ = [
    "Span",
    "TRACE_VERSION",
    "Trace",
    "Tracer",
    "count",
    "current",
    "disable",
    "enable",
    "enabled",
    "end_span",
    "read_jsonl",
    "render_counter_totals",
    "render_tree",
    "session",
    "span",
    "start_span",
    "trace_records",
    "traced",
    "write_jsonl",
]
