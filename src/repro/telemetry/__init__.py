"""Unified telemetry: hierarchical spans, op/byte counters, JSONL traces.

See docs/OBSERVABILITY.md for the span taxonomy (names map onto the
paper's Figure-5 phase columns), counter names, and the trace file
schema.  Telemetry is off by default; ``repro trace`` and the
benchmark harness enable it around one run.
"""

from . import metrics
from .core import (
    Span,
    Tracer,
    count,
    current,
    disable,
    enable,
    enabled,
    end_span,
    new_trace_id,
    session,
    span,
    start_span,
    thread_tracer,
    traced,
)
from .export import (
    TRACE_VERSION,
    Trace,
    read_jsonl,
    render_counter_totals,
    render_tree,
    trace_records,
    write_jsonl,
)

from .metrics import MetricsRegistry, QuantileHistogram, start_http_exporter

__all__ = [
    "MetricsRegistry",
    "QuantileHistogram",
    "Span",
    "TRACE_VERSION",
    "Trace",
    "Tracer",
    "count",
    "current",
    "disable",
    "enable",
    "enabled",
    "end_span",
    "metrics",
    "new_trace_id",
    "read_jsonl",
    "render_counter_totals",
    "render_tree",
    "session",
    "span",
    "start_span",
    "start_http_exporter",
    "thread_tracer",
    "trace_records",
    "traced",
    "write_jsonl",
]
