"""Trace export: JSONL writer/reader and the pretty tree renderer.

A trace file is line-delimited JSON:

* line 1 — a header: ``{"type": "trace", "version": 1, "spans": N}``;
* one ``{"type": "span", ...}`` object per finished span (post-order:
  children precede their parent, so a streaming consumer sees complete
  subtrees);
* optionally a final ``{"type": "orphans", "counters": {...}}`` object
  carrying counts that fired while no span was active.

``render_tree`` turns the span forest back into the indented view the
``repro trace`` subcommand prints, with both clocks and the counters
of every span.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Iterable

from .core import Span, Tracer

TRACE_VERSION = 2


def trace_records(tracer: Tracer) -> list[dict[str, Any]]:
    """Header + span records + orphan counters for one tracer."""
    spans = list(tracer.spans)
    records: list[dict[str, Any]] = [
        {
            "type": "trace",
            "version": TRACE_VERSION,
            "trace_id": tracer.trace_id,
            "spans": len(spans),
            "created_unix": time.time(),
        }
    ]
    records.extend(span.to_record() for span in spans)
    if tracer.orphan_counters:
        records.append({"type": "orphans", "counters": dict(tracer.orphan_counters)})
    return records


def write_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Serialize a finished trace to ``path``; returns the path."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for record in trace_records(tracer):
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


class Trace:
    """A parsed trace file: the span forest plus trace-level metadata."""

    def __init__(
        self,
        spans: list[Span],
        version: int = TRACE_VERSION,
        orphan_counters: dict[str, int | float] | None = None,
        trace_id: str | None = None,
    ):
        self.spans = spans
        self.version = version
        self.orphan_counters = orphan_counters or {}
        self.trace_id = trace_id
        self._by_id = {s.span_id: s for s in spans}

    @classmethod
    def from_tracer(cls, tracer: Tracer) -> "Trace":
        """View a live tracer's finished spans as a Trace."""
        return cls(
            list(tracer.spans),
            orphan_counters=dict(tracer.orphan_counters),
            trace_id=tracer.trace_id,
        )

    def roots(self) -> list[Span]:
        """Spans with no (present) parent, in start order."""
        present = self._by_id
        return sorted(
            (s for s in self.spans if s.parent_id not in present),
            key=lambda s: s.span_id,
        )

    def children(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in start order."""
        return sorted(
            (s for s in self.spans if s.parent_id == span.span_id),
            key=lambda s: s.span_id,
        )

    def find(self, name: str) -> list[Span]:
        """All spans with the given name."""
        return [s for s in self.spans if s.name == name]

    def subtree(self, span: Span) -> list[Span]:
        """``span`` plus all descendants (pre-order)."""
        out = [span]
        for child in self.children(span):
            out.extend(self.subtree(child))
        return out

    def total_counters(self) -> dict[str, int | float]:
        """Every counter summed across the whole trace."""
        totals: dict[str, int | float] = dict(self.orphan_counters)
        for span in self.spans:
            for key, value in span.counters.items():
                totals[key] = totals.get(key, 0) + value
        return totals


def read_jsonl(path: str | Path) -> Trace:
    """Parse a trace file written by :func:`write_jsonl`."""
    spans: list[Span] = []
    version = TRACE_VERSION
    trace_id: str | None = None
    orphans: dict[str, int | float] = {}
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "trace":
                version = record.get("version", TRACE_VERSION)
                trace_id = record.get("trace_id")
            elif kind == "span":
                spans.append(Span.from_record(record))
            elif kind == "orphans":
                for key, value in record.get("counters", {}).items():
                    orphans[key] = orphans.get(key, 0) + value
    return Trace(spans, version=version, orphan_counters=orphans, trace_id=trace_id)


# -- pretty renderer -----------------------------------------------------------


def _fmt_seconds(s: float) -> str:
    if s >= 1:
        return f"{s:.2f}s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f}ms"
    return f"{s * 1e6:.0f}us"


def _fmt_count(v: int | float) -> str:
    if isinstance(v, float) and not v.is_integer():
        return f"{v:.3g}"
    return f"{int(v):,}"


def _span_line(span: Span) -> str:
    parts = [span.name]
    if span.attrs:
        parts.append(
            " ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
        )
    parts.append(
        f"(wall {_fmt_seconds(span.wall_seconds)}, cpu {_fmt_seconds(span.cpu_seconds)})"
    )
    if span.counters:
        counters = ", ".join(
            f"{k}={_fmt_count(v)}" for k, v in sorted(span.counters.items())
        )
        parts.append(f"[{counters}]")
    return "  ".join(parts)


def render_tree(trace: Trace | Tracer) -> str:
    """An indented text rendering of the span forest."""
    if isinstance(trace, Tracer):
        trace = Trace.from_tracer(trace)
    lines: list[str] = []

    def walk(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_span_line(span))
            child_prefix = ""
        else:
            branch = "└─ " if is_last else "├─ "
            lines.append(prefix + branch + _span_line(span))
            child_prefix = prefix + ("   " if is_last else "│  ")
        children = trace.children(span)
        for i, child in enumerate(children):
            walk(child, child_prefix, i == len(children) - 1, False)

    for root in trace.roots():
        walk(root, "", True, True)
    if trace.orphan_counters:
        counters = ", ".join(
            f"{k}={_fmt_count(v)}" for k, v in sorted(trace.orphan_counters.items())
        )
        lines.append(f"(unattributed)  [{counters}]")
    return "\n".join(lines)


def render_counter_totals(trace: Trace | Tracer) -> str:
    """One line per counter, summed over the whole trace."""
    if isinstance(trace, Tracer):
        trace = Trace.from_tracer(trace)
    totals = trace.total_counters()
    if not totals:
        return "(no counters recorded)"
    width = max(len(k) for k in totals)
    return "\n".join(
        f"{k.ljust(width)}  {_fmt_count(v)}" for k, v in sorted(totals.items())
    )
