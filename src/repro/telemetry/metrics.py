"""Live metrics: counters, gauges, and exact-quantile histograms.

Spans (``telemetry.core``) answer *where did one run's time go*; this
module answers *what is the service doing right now* — the
fleet-observability side of the §5 evaluation once the prover runs as
a long-lived :class:`~repro.argument.net.ProverServer`.  A
:class:`MetricsRegistry` holds three instrument kinds:

* **counters** — monotonically increasing totals (sessions started,
  errors by code, backend elements processed);
* **gauges** — last-written values (sessions in flight, live workers);
* **histograms** — fixed-memory quantile sketches over observations
  (session latency, queue wait), via deterministic reservoir sampling:
  quantiles are *exact* while the observation count stays within the
  reservoir capacity (the common case for session-grained series), and
  an unbiased uniform sample beyond it, reproducible under the seed.

Like tracing, metrics are **off by default** and the disabled hooks
are designed to cost one thread-local read and a ``None`` check (the
zero-overhead guard in ``tests/telemetry/test_overhead.py`` pins the
dispatch-path delta).  A registry is bound either per thread
(:func:`use` — how ``ProverServer`` scopes a registry to its session
threads) or process-wide (:func:`install`).

Exposition: ``registry.render_text()`` emits a Prometheus-style
plaintext page, served by :func:`start_http_exporter` (the ``repro
serve --metrics-port`` endpoint); ``registry.snapshot()`` is the JSON
form the ``{"type": "stats"}`` wire request and ``repro top`` consume.
See docs/OBSERVABILITY.md for the metric catalog.
"""

from __future__ import annotations

import json
import math
import random
import threading
import time
from typing import Any, Iterator
from contextlib import contextmanager

#: quantiles included in snapshots and the plaintext exposition
SNAPSHOT_QUANTILES = (0.5, 0.9, 0.99)

#: default reservoir capacity; quantiles are exact up to this many
#: observations per histogram
DEFAULT_RESERVOIR = 1024


class QuantileHistogram:
    """Fixed-memory quantile sketch via deterministic reservoir sampling.

    Keeps at most ``capacity`` observations.  Until the total
    observation count exceeds the capacity, every observation is
    retained, so :meth:`quantile` is **exact**; past that point the
    reservoir is a uniform sample (algorithm R) drawn with a PRNG
    seeded from ``seed``, so two runs observing the same series report
    identical quantiles.  ``count``/``sum``/``min``/``max`` are always
    exact regardless of capacity.
    """

    __slots__ = ("capacity", "count", "sum", "min", "max", "_values", "_rng")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR, seed: int = 0):
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._values: list[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        """Record one observation (reservoir-sampled past capacity)."""
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._values) < self.capacity:
            self._values.append(value)
        else:
            j = self._rng.randrange(self.count)
            if j < self.capacity:
                self._values[j] = value

    @property
    def exact(self) -> bool:
        """True while every observation is still retained."""
        return self.count <= self.capacity

    def quantile(self, q: float) -> float | None:
        """Nearest-rank quantile over the retained observations.

        None when nothing has been observed.  With ``exact`` True this
        is the exact q-quantile of everything ever observed.  ``q`` is
        clamped into [0, 1] (dashboards routinely probe q=0/q=1 and
        float arithmetic can land a hair outside), and the endpoints
        are pinned: q=0 is the minimum retained value, q=1 the maximum.
        """
        if not self._values:
            return None
        q = min(1.0, max(0.0, float(q)))
        ordered = sorted(self._values)
        if q == 0.0:
            return ordered[0]
        if q == 1.0:
            return ordered[-1]
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> dict[str, Any]:
        """The snapshot form: count/sum/min/max plus standard quantiles."""
        out: dict[str, Any] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "exact": self.exact,
        }
        for q in SNAPSHOT_QUANTILES:
            out[f"p{int(q * 100)}"] = self.quantile(q)
        return out


class MetricsRegistry:
    """A named set of counters, gauges, and histograms (thread-safe).

    ``seed`` makes every histogram's reservoir deterministic: each one
    draws its own PRNG seed from ``(seed, name)``, so registries built
    the same way and fed the same series snapshot identically.
    ``info`` holds static labels (program name, backend, …) that ride
    along in snapshots and the exposition page.
    """

    def __init__(self, *, seed: int = 0, **info: Any):
        self._lock = threading.Lock()
        self._seed = seed
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, QuantileHistogram] = {}
        self.info: dict[str, Any] = dict(info)
        self.created_unix = time.time()

    # -- instruments -------------------------------------------------------

    def inc(self, name: str, n: int | float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0 on first use)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: int | float) -> None:
        """Set gauge ``name`` to ``value``."""
        with self._lock:
            self._gauges[name] = value

    def add_gauge(self, name: str, delta: int | float) -> None:
        """Adjust gauge ``name`` by ``delta`` (created at 0)."""
        with self._lock:
            self._gauges[name] = self._gauges.get(name, 0) + delta

    def observe(self, name: str, value: float, capacity: int = DEFAULT_RESERVOIR) -> None:
        """Record ``value`` into histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                # per-histogram seed derived from (registry seed, name)
                # so determinism survives creation-order differences
                hseed = (self._seed * 1_000_003 + hash(name)) & 0x7FFFFFFF
                hist = self._histograms[name] = QuantileHistogram(capacity, seed=hseed)
            hist.observe(value)

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Observe the block's wall-clock seconds into histogram ``name``.

        The gateway times its admission and worker-exchange stages this
        way; the duration is recorded even when the block raises (a
        failed session's latency is still latency).
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def counter_value(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float | None:
        """Current value of gauge ``name`` (None if never set)."""
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> QuantileHistogram | None:
        """The live histogram object for ``name`` (None if unused)."""
        with self._lock:
            return self._histograms.get(name)

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The JSON form: info + uptime + every instrument's state."""
        with self._lock:
            return {
                "info": dict(self.info),
                "uptime_seconds": time.time() - self.created_unix,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.summary()
                    for name, hist in self._histograms.items()
                },
            }

    def render_text(self) -> str:
        """Prometheus-style plaintext exposition of the registry.

        Metric names keep their dotted form with dots mapped to
        underscores; histograms expand to ``_count``/``_sum`` plus one
        ``{quantile="..."}`` sample per standard quantile.
        """
        snap = self.snapshot()
        lines: list[str] = []
        if snap["info"]:
            labels = ",".join(
                f'{_metric_name(k)}="{v}"' for k, v in sorted(snap["info"].items())
            )
            lines.append(f"repro_server_info{{{labels}}} 1")
        lines.append(f"repro_uptime_seconds {snap['uptime_seconds']:.3f}")
        for name, value in sorted(snap["counters"].items()):
            lines.append(f"{_metric_name(name)}_total {_num(value)}")
        for name, value in sorted(snap["gauges"].items()):
            lines.append(f"{_metric_name(name)} {_num(value)}")
        for name, summary in sorted(snap["histograms"].items()):
            base = _metric_name(name)
            lines.append(f"{base}_count {summary['count']}")
            lines.append(f"{base}_sum {_num(summary['sum'])}")
            for q in SNAPSHOT_QUANTILES:
                value = summary.get(f"p{int(q * 100)}")
                if value is not None:
                    lines.append(f'{base}{{quantile="{q}"}} {_num(value)}')
        return "\n".join(lines) + "\n"


def _metric_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _num(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.9g}"
    return str(int(value))


# -- hook binding --------------------------------------------------------------

_registry: MetricsRegistry | None = None
_thread_ctx = threading.local()


def active() -> MetricsRegistry | None:
    """This thread's registry (thread binding first, then global)."""
    registry = getattr(_thread_ctx, "registry", None)
    return registry if registry is not None else _registry


def install(registry: MetricsRegistry | None) -> MetricsRegistry | None:
    """Install (or with None, remove) the process-wide registry."""
    global _registry
    _registry = registry
    return registry


@contextmanager
def use(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Bind ``registry`` as THIS thread's registry for the block.

    How ``ProverServer`` scopes its registry to session threads: hooks
    fired while the session runs (including the field-backend
    throughput ticks during proving) land in the server's registry
    without disturbing any other server in the process.
    """
    prev = getattr(_thread_ctx, "registry", None)
    _thread_ctx.registry = registry
    try:
        yield registry
    finally:
        _thread_ctx.registry = prev


def inc(name: str, n: int | float = 1) -> None:
    """Counter hook; free no-op when no registry is bound."""
    registry = active()
    if registry is not None:
        registry.inc(name, n)


def observe(name: str, value: float) -> None:
    """Histogram hook; free no-op when no registry is bound."""
    registry = active()
    if registry is not None:
        registry.observe(name, value)


def set_gauge(name: str, value: int | float) -> None:
    """Gauge hook; free no-op when no registry is bound."""
    registry = active()
    if registry is not None:
        registry.set_gauge(name, value)


# -- plaintext HTTP exposition --------------------------------------------------


def start_http_exporter(
    registry: MetricsRegistry, host: str = "127.0.0.1", port: int = 0
):
    """Serve ``registry.render_text()`` over HTTP on a daemon thread.

    Returns the ``ThreadingHTTPServer``; its bound address is
    ``server.server_address`` (pass port 0 to pick a free one) and
    ``server.shutdown()`` stops it.  ``GET /`` (any path) answers the
    plaintext page; ``GET /json`` answers the snapshot as JSON.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path.rstrip("/").endswith("json"):
                body = json.dumps(registry.snapshot(), sort_keys=True).encode()
                content_type = "application/json"
            else:
                body = registry.render_text().encode()
                content_type = "text/plain; version=0.0.4"
            self.send_response(200)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # noqa: D102 - silence request logs
            pass

    server = ThreadingHTTPServer((host, port), Handler)
    server.daemon_threads = True
    thread = threading.Thread(
        target=server.serve_forever, name="metrics-exporter", daemon=True
    )
    thread.start()
    return server
