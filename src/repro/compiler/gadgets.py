"""Constraint gadgets: comparisons, booleans, selection, (non)zero tests.

These are the "pseudoconstraints" of §2.2: program constructs that
expand into several actual constraints.  The expansion factors match
the paper's accounting:

* order comparisons cost O(bit_width) constraints (the paper states
  O(log |F|) for full-field-width comparisons; benchmarks use 32-bit
  operands, §5.1);
* ``!=`` uses the inverse trick quoted verbatim in §2.2:
  ``0 = (X − Z)·M − 1``;
* ``<`` / ``==`` produce "only an average of one or two distinct
  degree-2 terms per constraint and add at least twice as many new
  variables" (§4 footnote 7) — the property that keeps K₂ small.

Every hint variable introduced here is pinned down by constraints; a
cheating prover gains nothing by deviating from a hint (the test suite
checks this by perturbing hint outputs).
"""

from __future__ import annotations

from .builder import Builder, Wire


def assert_boolean(b: Builder, x: Wire) -> None:
    """x ∈ {0, 1}:  x² − x = 0."""
    b.assert_zero(x * x - x)


def assert_nonzero(b: Builder, x: Wire) -> Wire:
    """Constrain x ≠ 0 via the §2.2 inverse trick; returns the inverse wire.

    Matches the paper's cost exactly: one constraint and one auxiliary
    variable for a degree-1 operand ({0 = (X − Z)·M − 1}); degree-2
    operands are materialized first.
    """
    if x.expr.degree() > 1:
        x = b.define(x)
    x_expr = x.expr
    p = b.field.p

    def inv_hint(values, e=x_expr):
        v = e.evaluate(p, values)
        # If v == 0 no valid M exists; return 0 so the constraint fails
        # loudly in solve() rather than crashing mid-hint.
        return pow(v, p - 2, p) if v else 0

    m = b.hint_var(inv_hint)
    b.assert_zero(x * m - 1)
    return m


def assert_neq(b: Builder, x: Wire | int, y: Wire | int) -> None:
    """x ≠ y, one constraint + one auxiliary (the paper's X != Z example)."""
    x_w = x if isinstance(x, Wire) else b.constant(x)
    assert_nonzero(b, x_w - y)


def is_zero(b: Builder, x: Wire) -> Wire:
    """Boolean wire: 1 if x == 0 else 0.  Two constraints, two auxiliaries.

    r = 1 − x·M with M = x⁻¹ when x ≠ 0; constraints r·x = 0 and
    x·M = 1 − r pin r to exactly the right bit.
    """
    x = b.define(x)
    x_expr = x.expr
    p = b.field.p

    def inv_hint(values, e=x_expr):
        v = e.evaluate(p, values)
        return pow(v, p - 2, p) if v else 0

    def bit_hint(values, e=x_expr):
        return 1 if e.evaluate(p, values) == 0 else 0

    m = b.hint_var(inv_hint)
    r = b.hint_var(bit_hint)
    b.assert_zero(r * x)            # r is 0 whenever x ≠ 0
    b.assert_zero(x * m - (1 - r))  # x ≠ 0 forces r = 0 with M = x⁻¹; x == 0 forces r = 1
    return r


def is_equal(b: Builder, x: Wire | int, y: Wire | int) -> Wire:
    """Boolean wire: 1 iff x == y."""
    x_w = x if isinstance(x, Wire) else b.constant(x)
    return is_zero(b, x_w - y)


def to_bits(b: Builder, x: Wire, width: int) -> list[Wire]:
    """Decompose x into ``width`` boolean wires, LSB first.

    Adds ``width`` boolean constraints plus the recomposition
    constraint; the caller must know x ∈ [0, 2^width).  With CSE
    enabled, decomposing the same value at the same width reuses the
    earlier decomposition's bits (exact-width only — see below).
    """
    from .expr import Expr

    if (1 << width) > b.field.p:
        # 2^width > p makes the decomposition ambiguous: some residues
        # have two valid bit patterns (v and v + p), so to_bits would
        # no longer pin its witness — a prover could present either.
        raise ValueError(
            f"to_bits width {width} exceeds field capacity "
            f"(need 2^width <= p; p has {b.field.p.bit_length()} bits)"
        )
    x = b.define(x)
    if b.enable_cse:
        # Exact-width reuse only: to_bits doubles as the range proof
        # x < 2^width, so borrowing the low bits of a *wider*
        # decomposition would silently drop that range check.
        indices = b.bits_cache.get((b.expr_key(x.expr), width))
        if indices is not None:
            return [Wire(b, Expr.var(i)) for i in indices]
    x_expr = x.expr
    p = b.field.p
    bits: list[Wire] = []
    for i in range(width):
        def bit_hint(values, e=x_expr, shift=i):
            return (e.evaluate(p, values) >> shift) & 1

        bit = b.hint_var(bit_hint)
        assert_boolean(b, bit)
        bits.append(bit)
    acc: Wire | int = 0
    for i, bit in enumerate(bits):
        acc = acc + bit * (1 << i)
    b.assert_equal(acc, x)
    if b.enable_cse:
        b.bits_cache[(b.expr_key(x.expr), width)] = [
            bit.expr.as_single_variable() for bit in bits
        ]
    return bits


def less_than(b: Builder, x: Wire | int, y: Wire | int, *, bit_width: int | None = None) -> Wire:
    """Boolean wire: 1 if x < y (as signed values of the given width).

    Computes s = x − y + 2^W, decomposes into W+1 bits; the top bit is
    0 exactly when x < y.  Requires |x − y| < 2^W.
    """
    width = bit_width if bit_width is not None else b.default_bit_width
    x_w = x if isinstance(x, Wire) else b.constant(x)
    s = x_w - y + (1 << width)
    bits = to_bits(b, s, width + 1)
    return 1 - bits[width]


def less_equal(b: Builder, x: Wire | int, y: Wire | int, *, bit_width: int | None = None) -> Wire:
    """Boolean wire: 1 iff x ≤ y (via x − 1 < y)."""
    x_w = x if isinstance(x, Wire) else b.constant(x)
    return less_than(b, x_w - 1, y, bit_width=bit_width)


def assert_less_than(b: Builder, x: Wire | int, y: Wire | int, *, bit_width: int | None = None) -> None:
    """x < y as a hard constraint (one fewer constraint than the bit test)."""
    width = bit_width if bit_width is not None else b.default_bit_width
    y_w = y if isinstance(y, Wire) else b.constant(y)
    # y − x − 1 ∈ [0, 2^width)
    to_bits(b, y_w - x - 1, width)


def select(b: Builder, cond: Wire, if_true: Wire | int, if_false: Wire | int) -> Wire:
    """cond·(t − f) + f; cond must already be boolean."""
    t = if_true if isinstance(if_true, Wire) else b.constant(if_true)
    return cond * (t - if_false) + if_false


def logical_and(b: Builder, x: Wire, y: Wire) -> Wire:
    """x ∧ y = x·y (operands must be boolean)."""
    return x * y


def logical_or(b: Builder, x: Wire, y: Wire) -> Wire:
    """x ∨ y = x + y − x·y."""
    return x + y - x * y


def logical_not(b: Builder, x: Wire) -> Wire:
    """¬x = 1 − x."""
    return 1 - x


def logical_xor(b: Builder, x: Wire, y: Wire) -> Wire:
    """x ⊕ y = x + y − 2·x·y."""
    return x + y - 2 * (x * y)


def minimum(b: Builder, x: Wire, y: Wire, *, bit_width: int | None = None) -> Wire:
    """min(x, y) via one comparison and one select."""
    lt = less_than(b, x, y, bit_width=bit_width)
    return select(b, lt, x, y)


def maximum(b: Builder, x: Wire, y: Wire, *, bit_width: int | None = None) -> Wire:
    """max(x, y) via one comparison and one select."""
    lt = less_than(b, x, y, bit_width=bit_width)
    return select(b, lt, y, x)


def absolute(b: Builder, x: Wire, *, bit_width: int | None = None) -> Wire:
    """|x| for signed x (sign test + select)."""
    neg = less_than(b, x, 0, bit_width=bit_width)
    return select(b, neg, -x, x)


def array_get(b: Builder, array: list[Wire], index: Wire, *, bit_width: int | None = None) -> Wire:
    """Dynamic array read by linear scan — the §5.4 caveat made concrete.

    Indirect memory accesses "produce an excessive number of
    constraints" under the natural translation: this costs O(n)
    comparisons for an n-element array, versus O(1) for a static index.
    """
    acc: Wire | int = 0
    for i, elem in enumerate(array):
        hit = is_equal(b, index, i)
        acc = acc + hit * elem
    return acc if isinstance(acc, Wire) else b.constant(acc)
