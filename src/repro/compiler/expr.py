"""Symbolic degree-≤2 expressions over constraint variables.

Ginger's compiler "turns a program into a list of assignment
statements, then produces a constraint or pseudoconstraint for each
statement" (§2.2).  While a statement's right-hand side is being built
it is one of these ``Expr`` values: a sparse polynomial of total degree
at most two.  Degree-2 expressions can be used directly in a Ginger
constraint (that's what makes K₂ > number of multiplications possible);
multiplying two expressions whose product would exceed degree 2 forces
the builder to materialize an operand into a fresh variable first.
"""

from __future__ import annotations

from typing import Mapping

from ..constraints.ginger import GingerConstraint, _norm_pair
from ..constraints.linear import CONST, LinearCombination


class Expr:
    """constant + Σ cᵢ·Wᵢ + Σ c_{ik}·Wᵢ·W_k, coefficients unreduced ints."""

    __slots__ = ("constant", "linear", "quadratic")

    def __init__(
        self,
        constant: int = 0,
        linear: Mapping[int, int] | None = None,
        quadratic: Mapping[tuple[int, int], int] | None = None,
    ):
        self.constant = constant
        self.linear: dict[int, int] = dict(linear) if linear else {}
        self.quadratic: dict[tuple[int, int], int] = dict(quadratic) if quadratic else {}

    # -- constructors -----------------------------------------------------------

    @classmethod
    def const(cls, value: int) -> "Expr":
        return cls(constant=value)

    @classmethod
    def var(cls, index: int) -> "Expr":
        return cls(linear={index: 1})

    # -- degree bookkeeping -------------------------------------------------------

    def degree(self) -> int:
        """Total degree: 0, 1, or 2."""
        if any(self.quadratic.values()):
            return 2
        if any(self.linear.values()):
            return 1
        return 0

    def is_constant(self) -> bool:
        """True iff no variable terms remain."""
        return self.degree() == 0

    def as_single_variable(self) -> int | None:
        """Index if this expression is exactly 1·Wᵢ, else None."""
        if self.constant or self.quadratic:
            return None
        nonzero = [(i, c) for i, c in self.linear.items() if c]
        if len(nonzero) == 1 and nonzero[0][1] == 1:
            return nonzero[0][0]
        return None

    # -- ring operations -----------------------------------------------------------

    def add(self, other: "Expr") -> "Expr":
        """Termwise sum."""
        out = Expr(self.constant + other.constant, self.linear, self.quadratic)
        for i, c in other.linear.items():
            out.linear[i] = out.linear.get(i, 0) + c
        for k, c in other.quadratic.items():
            out.quadratic[k] = out.quadratic.get(k, 0) + c
        return out

    def neg(self) -> "Expr":
        """Negation."""
        return Expr(
            -self.constant,
            {i: -c for i, c in self.linear.items()},
            {k: -c for k, c in self.quadratic.items()},
        )

    def sub(self, other: "Expr") -> "Expr":
        """Termwise difference."""
        return self.add(other.neg())

    def scale(self, c: int) -> "Expr":
        """Scalar multiple."""
        if c == 0:
            return Expr()
        return Expr(
            self.constant * c,
            {i: v * c for i, v in self.linear.items()},
            {k: v * c for k, v in self.quadratic.items()},
        )

    def mul(self, other: "Expr") -> "Expr":
        """Product; raises ``DegreeOverflow`` if it would exceed degree 2."""
        if self.degree() + other.degree() > 2:
            raise DegreeOverflow()
        if other.is_constant():
            return self.scale(other.constant)
        if self.is_constant():
            return other.scale(self.constant)
        # both degree exactly 1
        out = Expr(self.constant * other.constant)
        for i, ci in self.linear.items():
            out.linear[i] = out.linear.get(i, 0) + ci * other.constant
        for k, ck in other.linear.items():
            out.linear[k] = out.linear.get(k, 0) + ck * self.constant
        for i, ci in self.linear.items():
            if ci == 0:
                continue
            for k, ck in other.linear.items():
                if ck == 0:
                    continue
                key = _norm_pair(i, k)
                out.quadratic[key] = out.quadratic.get(key, 0) + ci * ck
        return out

    # -- lowering ---------------------------------------------------------------

    def to_constraint(self) -> GingerConstraint:
        """The Ginger constraint ``self = 0``."""
        return GingerConstraint(self.constant, self.linear, self.quadratic)

    def to_lc(self) -> LinearCombination:
        """Degree-≤1 expressions as a LinearCombination (else ValueError)."""
        if self.degree() > 1:
            raise ValueError("expression has degree 2; materialize it first")
        lc = LinearCombination()
        if self.constant:
            lc.add_term(CONST, self.constant)
        for i, c in self.linear.items():
            if c:
                lc.add_term(i, c)
        return lc

    def evaluate(self, p: int, values) -> int:
        """Value at a concrete assignment (values indexed by variable)."""
        acc = self.constant
        for i, c in self.linear.items():
            acc += c * values[i]
        for (i, k), c in self.quadratic.items():
            acc += c * values[i] * values[k]
        return acc % p

    def __repr__(self) -> str:
        parts = []
        if self.constant:
            parts.append(str(self.constant))
        parts += [f"{c}*W{i}" for i, c in sorted(self.linear.items()) if c]
        parts += [
            f"{c}*W{i}*W{k}" for (i, k), c in sorted(self.quadratic.items()) if c
        ]
        return "Expr(" + " + ".join(parts or ["0"]) + ")"


class DegreeOverflow(Exception):
    """Raised when a product would exceed degree 2 (builder materializes)."""
