"""Differential checker for compiled constraint systems.

The paper's generality claim rests on the compiler faithfully turning
high-level programs into constraints — this module checks that claim
mechanically instead of trusting it, in the spirit of the
zero-knowledge-circuit verification line (arXiv:2311.08858,
arXiv:2104.05516 in PAPERS.md).  Three layers:

* **Semantics oracle** — execute the program's reference Python
  semantics over random, boundary, and structure-aware adversarial
  inputs, and assert that the solver's witness satisfies both the
  Ginger and the canonical quadratic system and that the circuit's
  outputs equal the reference outputs.  Any disagreement is a
  completeness bug in the compiler (or a wrong reference).

* **Unsat-witness prober** — apply seeded single-wire mutations to an
  honest witness and assert the quadratic system rejects, reporting
  exactly which constraint fired.  A non-input wire the prober can
  move freely without firing any constraint is *prover freedom*; if
  that wire is an output, it is a soundness hole.  Because a mutated
  residual is a degree-≤2 polynomial in the probe delta, three
  distinct deltas suffice: a wire that survives all three has genuine
  freedom along that axis, not an unlucky root.

* **Compiler-mutation harness** — inject seeded faults into a *copy*
  of the compiled quadratic system (dropped constraint, sign flip,
  off-by-one coefficient, swapped wires) and require the oracle +
  prober to catch every one.  The measured kill rate gates CI: a
  surviving mutant means the checker has a blind spot.

The mutation catalog is filtered only against the *honest* witness
(standard equivalent-mutant avoidance), never against the checker's
own verdict, so a 100% kill requirement is a real gate rather than a
tautology.  Dropped-constraint candidates are restricted to
constraints that pin a *private* wire (one mentioned by no other
constraint — e.g. an output's defining constraint, or the M wire of
``assert_nonzero``), which makes their detection structurally
guaranteed: dropping the constraint frees the wire, and the prober
sees a survivor that the pristine system did not have.

Everything is seeded and the JSON report contains no clocks, so two
runs with the same seed produce byte-identical reports.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Sequence

from .. import telemetry
from ..constraints.linear import CONST, LinearCombination
from ..constraints.quadratic import QuadraticConstraint, QuadraticSystem
from .program import CompiledProgram

#: Probe deltas.  A mutated residual is degree ≤ 2 in the delta, so if
#: three distinct deltas all leave every touched constraint satisfied,
#: the freedom is real (a nonzero quadratic has ≤ 2 roots).
PROBE_DELTAS = (1, 2, 3)

#: The four seeded compiler-fault kinds the harness must kill.
MUTATION_KINDS = ("drop-constraint", "flip-sign", "off-by-one", "swap-wires")

CHECK_VERSION = 1


# -- witness probing -------------------------------------------------------------


@dataclass
class ProbeResult:
    """Outcome of a single-wire sweep over one honest witness."""

    wires_probed: int
    killed: int
    #: non-input wires movable by every probe delta without firing anything
    survivors: list[int]
    #: the subset of ``survivors`` that are output wires (soundness holes)
    output_survivors: list[int]
    #: wire → index of the first constraint that fired (localization)
    firing_constraint: dict[int, int]
    #: constraints never observed firing during the sweep (per-constraint
    #: liveness; a constraint over input wires only is reported here too)
    constraints_unfired: list[int]
    constraints_probed: int


class _Prober:
    """Single-wire witness mutations with O(1) per-probe residuals.

    Per constraint j the honest evaluations (a₀, b₀, c₀) are cached;
    bumping wire v by δ changes the residual to
    ``(a₀+a_v δ)(b₀+b_v δ) − (c₀+c_v δ)`` — no re-evaluation of the
    linear combinations is needed.
    """

    def __init__(self, system: QuadraticSystem, witness: Sequence[int]):
        self.system = system
        self.witness = witness
        p = system.field.p
        self.p = p
        self.evals = [
            (
                c.a.evaluate(system.field, witness),
                c.b.evaluate(system.field, witness),
                c.c.evaluate(system.field, witness),
            )
            for c in system.constraints
        ]
        index: dict[int, list[int]] = {}
        for j, c in enumerate(system.constraints):
            for v in c.variables():
                index.setdefault(v, []).append(j)
        self.wire_index = index

    def residual(self, j: int, wire: int, delta: int) -> int:
        """Residual of constraint j with ``witness[wire] += delta``."""
        a0, b0, c0 = self.evals[j]
        c = self.system.constraints[j]
        av = c.a.terms.get(wire, 0)
        bv = c.b.terms.get(wire, 0)
        cv = c.c.terms.get(wire, 0)
        return ((a0 + av * delta) * (b0 + bv * delta) - (c0 + cv * delta)) % self.p

    def fires(self, wire: int, delta: int) -> int | None:
        """Index of the first constraint violated by the bump, if any."""
        for j in self.wire_index.get(wire, ()):
            if self.residual(j, wire, delta):
                return j
        return None

    def sweep(self) -> ProbeResult:
        """Probe every non-input wire with every delta."""
        system = self.system
        inputs = set(system.input_vars)
        outputs = set(system.output_vars)
        survivors: list[int] = []
        firing: dict[int, int] = {}
        fired_constraints: set[int] = set()
        probed = 0
        for wire in range(1, system.num_vars + 1):
            if wire in inputs:
                continue
            probed += 1
            telemetry.count("check.probes")
            free = True
            for delta in PROBE_DELTAS:
                hit = None
                for j in self.wire_index.get(wire, ()):
                    if self.residual(j, wire, delta):
                        hit = j
                        fired_constraints.add(j)
                        break
                if hit is None:
                    continue
                free = False
                if wire not in firing:
                    firing[wire] = hit
            if free:
                survivors.append(wire)
        unfired = [
            j for j in range(len(system.constraints)) if j not in fired_constraints
        ]
        return ProbeResult(
            wires_probed=probed,
            killed=probed - len(survivors),
            survivors=survivors,
            output_survivors=sorted(set(survivors) & outputs),
            firing_constraint=firing,
            constraints_unfired=unfired,
            constraints_probed=len(system.constraints),
        )


# -- compiler mutations ----------------------------------------------------------


@dataclass(frozen=True)
class Mutation:
    """One seeded fault injected into a compiled quadratic system."""

    kind: str
    constraint: int
    side: str = ""
    wires: tuple[int, ...] = ()

    def describe(self) -> str:
        """Human-readable location: kind @ constraint/side/wires."""
        where = f"constraint {self.constraint}"
        if self.side:
            where += f" side {self.side}"
        if self.wires:
            where += " wire " + "/".join(f"W{v}" for v in self.wires)
        return f"{self.kind} @ {where}"


def _mutate_lc(lc: LinearCombination, mut: Mutation, p: int) -> LinearCombination:
    terms = dict(lc.terms)
    if mut.kind == "flip-sign":
        v = mut.wires[0]
        terms[v] = (-terms.get(v, 0)) % p
    elif mut.kind == "off-by-one":
        v = mut.wires[0]
        terms[v] = (terms.get(v, 0) + 1) % p
    elif mut.kind == "swap-wires":
        v, u = mut.wires
        terms[v], terms[u] = terms.get(u, 0), terms.get(v, 0)
    else:  # pragma: no cover - guarded by apply_mutation
        raise ValueError(mut.kind)
    return LinearCombination({i: c for i, c in terms.items() if c})


def apply_mutation(system: QuadraticSystem, mut: Mutation) -> QuadraticSystem:
    """A fresh system with one fault injected; the original is untouched."""
    if mut.kind not in MUTATION_KINDS:
        raise ValueError(f"unknown mutation kind: {mut.kind}")
    constraints = list(system.constraints)
    if mut.kind == "drop-constraint":
        del constraints[mut.constraint]
    else:
        c = constraints[mut.constraint]
        sides = {"a": c.a, "b": c.b, "c": c.c}
        sides[mut.side] = _mutate_lc(sides[mut.side], mut, system.field.p)
        constraints[mut.constraint] = QuadraticConstraint(
            sides["a"], sides["b"], sides["c"]
        )
    return QuadraticSystem(
        field=system.field,
        num_vars=system.num_vars,
        constraints=constraints,
        input_vars=list(system.input_vars),
        output_vars=list(system.output_vars),
    )


# -- oracle cases ----------------------------------------------------------------


@dataclass
class OracleCase:
    kind: str                       # random | boundary | adversarial
    inputs: list[int]
    status: str = "pending"         # ok | skipped | failed
    detail: str = ""


@dataclass
class CheckReport:
    """Everything one ``repro check`` run learned about a program."""

    program: str
    seed: int
    field_bits: int
    passed: bool
    oracle: dict
    probes: dict
    mutations: dict

    def to_document(self) -> dict:
        """The report as one JSON-ready dict (what ``to_json`` serializes)."""
        return {
            "check_version": CHECK_VERSION,
            "program": self.program,
            "seed": self.seed,
            "field_bits": self.field_bits,
            "passed": self.passed,
            "oracle": self.oracle,
            "probes": self.probes,
            "mutations": self.mutations,
        }

    def to_json(self) -> str:
        """Deterministic serialization: same seed ⇒ identical bytes."""
        return json.dumps(self.to_document(), indent=2, sort_keys=True) + "\n"


#: how many localization entries the JSON report keeps (full maps can
#: run to thousands of wires; the sample is for humans, the counts for CI)
_LOCALIZATION_SAMPLE = 24


class ProgramChecker:
    """Differential checker for one :class:`CompiledProgram`.

    ``reference`` maps an input vector to expected outputs (omit for
    programs without a reference — the oracle then only checks witness
    satisfiability).  ``input_generator`` draws one valid random input
    vector; without one, inputs are uniform ``input_bits``-bit values.
    ``validate`` is the input-domain predicate: boundary/adversarial
    vectors that fail it are skipped rather than fed to a reference
    that may not terminate outside its domain (e.g. fannkuch's flip
    count on a non-permutation).
    """

    def __init__(
        self,
        program: CompiledProgram,
        *,
        reference: Callable[[list[int]], Sequence[int]] | None = None,
        input_generator: Callable[[random.Random], Sequence[int]] | None = None,
        validate: Callable[[list[int]], bool] | None = None,
        seed: int = 0,
        num_random: int = 6,
        input_bits: int = 8,
        mutations_per_kind: int = 3,
    ):
        self.program = program
        self.reference = reference
        self.input_generator = input_generator
        self.validate = validate
        self.seed = seed
        self.num_random = num_random
        self.input_bits = input_bits
        self.mutations_per_kind = mutations_per_kind

    # -- input generation ---------------------------------------------------

    def _draw(self, rng: random.Random) -> list[int]:
        if self.input_generator is not None:
            return list(self.input_generator(rng))
        bound = 1 << self.input_bits
        return [rng.randrange(bound) for _ in range(self.program.num_inputs)]

    def oracle_vectors(self) -> tuple[list[OracleCase], int]:
        """(cases, skipped_count): seeded random + boundary + adversarial.

        Boundary and adversarial vectors are built from *position-wise
        observed value pools* so they stay inside each position's
        domain (masks stay boolean, tokens stay below the alphabet),
        plus explicit 0/1 injections; anything the app's domain
        predicate rejects is counted as skipped, not run.
        """
        rng = random.Random(self.seed)
        base = [self._draw(rng) for _ in range(self.num_random)]
        cases = [OracleCase("random", v) for v in base]
        n = len(base[0]) if base else 0
        if n == 0:
            return cases, 0

        observed = [sorted({v[i] for v in base}) for i in range(n)]
        candidates: list[tuple[str, list[int]]] = [
            ("boundary", [obs[0] for obs in observed]),     # position-wise min
            ("boundary", [obs[-1] for obs in observed]),    # position-wise max
            ("boundary", [0] * n),
            ("boundary", [1] * n),
        ]
        positions = sorted(rng.sample(range(n), min(n, 6)))
        for pos in positions:
            for value in sorted({0, 1, observed[pos][-1]}):
                patched = list(base[0])
                patched[pos] = value
                candidates.append(("boundary", patched))

        candidates.append(("adversarial", list(reversed(base[0]))))
        if n >= 2:
            i, j = rng.sample(range(n), 2)
            swapped = list(base[0])
            swapped[i], swapped[j] = swapped[j], swapped[i]
            candidates.append(("adversarial", swapped))
        if len(base) >= 2:
            candidates.append(
                ("adversarial", [min(a, b) for a, b in zip(base[0], base[1])])
            )
            candidates.append(
                ("adversarial", [max(a, b) for a, b in zip(base[0], base[1])])
            )

        seen = {tuple(v) for v in base}
        skipped = 0
        for kind, vec in candidates:
            key = tuple(vec)
            if key in seen:
                continue
            if self.validate is not None and not self.validate(vec):
                skipped += 1
                continue
            seen.add(key)
            cases.append(OracleCase(kind, vec))
        return cases, skipped

    # -- the oracle ---------------------------------------------------------

    def _run_oracle(self, cases: list[OracleCase]) -> tuple[list, list[dict]]:
        """Solve every case; returns (solved witnesses, failures)."""
        program = self.program
        field = program.field
        solved = []
        failures: list[dict] = []

        def fail(case: OracleCase, what: str) -> None:
            case.status = "failed"
            case.detail = what
            failures.append({"kind": case.kind, "inputs": case.inputs, "error": what})

        for case in cases:
            telemetry.count("check.inputs")
            try:
                sol = program.solve(case.inputs, check=False)
            except Exception as exc:  # hint blew up: completeness bug
                fail(case, f"solve raised: {exc}")
                continue
            if not program.ginger.is_satisfied(sol.ginger_witness):
                bad = [
                    j for j, r in enumerate(program.ginger.residuals(sol.ginger_witness)) if r
                ]
                fail(case, f"ginger unsatisfied at constraints {bad[:8]}")
                continue
            if not program.quadratic.is_satisfied(sol.quadratic_witness):
                bad = [
                    j
                    for j, r in enumerate(program.quadratic.residuals(sol.quadratic_witness))
                    if r
                ]
                fail(case, f"quadratic unsatisfied at constraints {bad[:8]}")
                continue
            if self.reference is not None:
                try:
                    expected = [field.reduce(v) for v in self.reference(list(case.inputs))]
                except Exception as exc:
                    case.status = "skipped"
                    case.detail = f"reference raised: {exc}"
                    continue
                if expected != sol.output_values:
                    fail(
                        case,
                        f"outputs {sol.output_values} != reference {expected}",
                    )
                    continue
            case.status = "ok"
            solved.append((case, sol))
        return solved, failures

    # -- mutation catalog ---------------------------------------------------

    def _drop_candidates(self, prober: _Prober) -> list[Mutation]:
        """Constraints pinning a private wire (occurs in no other constraint).

        The wire must actually be pinned at the probe witness (some
        delta fires the constraint) — otherwise dropping the constraint
        is locally equivalent and no single-wire probe can see it.
        """
        system = self.program.quadratic
        inputs = set(system.input_vars)
        out: list[Mutation] = []
        for j, c in enumerate(system.constraints):
            for v in sorted(c.variables()):
                if v in inputs or v == CONST:
                    continue
                if len(prober.wire_index.get(v, ())) != 1:
                    continue
                if any(prober.residual(j, v, d) for d in PROBE_DELTAS):
                    out.append(Mutation("drop-constraint", j, wires=(v,)))
                    break
        return out

    def _coefficient_candidate(
        self, rng: random.Random, kind: str, prober: _Prober, tries: int = 200
    ) -> Mutation | None:
        """Rejection-sample one coefficient fault that the honest witness sees.

        Acceptance consults only the honest witness (the mutated
        constraint's residual must be nonzero there) — the standard
        equivalent-mutant filter, independent of the checker verdict.
        """
        system = self.program.quadratic
        field = system.field
        w = prober.witness
        num = len(system.constraints)
        for _ in range(tries):
            j = rng.randrange(num)
            c = system.constraints[j]
            side = rng.choice("abc")
            lc = getattr(c, side)
            terms = [v for v in sorted(lc.terms)]
            if kind == "swap-wires":
                vars_only = [v for v in terms if v != CONST]
                if len(vars_only) < 2:
                    continue
                pair = tuple(rng.sample(vars_only, 2))
                mut = Mutation(kind, j, side=side, wires=pair)
            else:
                if not terms:
                    continue
                v = rng.choice(terms)
                mut = Mutation(kind, j, side=side, wires=(v,))
            mutated = apply_mutation(system, mut)
            if mutated.constraints[j].residual(field, w):
                return mut
        return None

    def build_catalog(self, rng: random.Random, prober: _Prober) -> list[Mutation]:
        """≥ ``mutations_per_kind`` seeded faults of each of the four kinds."""
        catalog: list[Mutation] = []
        droppable = self._drop_candidates(prober)
        take = min(self.mutations_per_kind, len(droppable))
        if take:
            catalog.extend(rng.sample(droppable, take))
        for kind in ("flip-sign", "off-by-one", "swap-wires"):
            picked: list[Mutation] = []
            for _ in range(self.mutations_per_kind * 4):
                mut = self._coefficient_candidate(rng, kind, prober)
                if mut is not None and mut not in picked:
                    picked.append(mut)
                if len(picked) >= self.mutations_per_kind:
                    break
            catalog.extend(picked)
        return catalog

    def _run_mutant(
        self,
        mut: Mutation,
        solved: list,
        baseline: ProbeResult,
    ) -> str | None:
        """How the checker killed the mutant, or None if it survived."""
        mutated = apply_mutation(self.program.quadratic, mut)
        for _case, sol in solved:
            if not mutated.is_satisfied(sol.quadratic_witness):
                return "oracle"
        probe = _Prober(mutated, solved[0][1].quadratic_witness).sweep()
        if set(probe.output_survivors) - set(baseline.output_survivors):
            return "probe-output"
        if set(probe.survivors) - set(baseline.survivors):
            return "probe-freedom"
        return None

    # -- top level ----------------------------------------------------------

    def run(self, *, mutations: bool = True) -> CheckReport:
        """Oracle + prober (+ mutation harness); returns the full report."""
        cases, skipped_domain = self.oracle_vectors()
        solved, failures = self._run_oracle(cases)
        by_kind: dict[str, int] = {}
        for case in cases:
            if case.status == "ok":
                by_kind[case.kind] = by_kind.get(case.kind, 0) + 1
        oracle_doc = {
            "cases": len(cases),
            "ok": sum(1 for c in cases if c.status == "ok"),
            "failed": len(failures),
            "skipped": sum(1 for c in cases if c.status == "skipped"),
            "skipped_domain": skipped_domain,
            "by_kind": dict(sorted(by_kind.items())),
            "failures": failures[:8],
        }

        probes_doc: dict = {}
        mutations_doc: dict = {"ran": False}
        passed = not failures and bool(solved)
        if not solved:
            oracle_doc["failures"] = failures[:8] or [
                {"error": "no oracle case produced a witness"}
            ]
        else:
            prober = _Prober(self.program.quadratic, solved[0][1].quadratic_witness)
            baseline = prober.sweep()
            sample = [
                {"wire": v, "constraint": baseline.firing_constraint[v]}
                for v in sorted(baseline.firing_constraint)[:_LOCALIZATION_SAMPLE]
            ]
            probes_doc = {
                "deltas": list(PROBE_DELTAS),
                "wires_probed": baseline.wires_probed,
                "killed": baseline.killed,
                "survivors": baseline.survivors,
                "output_survivors": baseline.output_survivors,
                "constraints_probed": baseline.constraints_probed,
                "constraints_unfired": len(baseline.constraints_unfired),
                "localization_sample": sample,
            }
            if baseline.output_survivors:
                passed = False

            if mutations:
                rng = random.Random(self.seed + 0x5EED)
                catalog = self.build_catalog(rng, prober)
                results = []
                killed = 0
                for mut in catalog:
                    how = self._run_mutant(mut, solved, baseline)
                    if how is not None:
                        killed += 1
                        telemetry.count("check.mutations_killed")
                    else:
                        telemetry.count("check.mutations_survived")
                    results.append(
                        {
                            "mutation": mut.describe(),
                            "kind": mut.kind,
                            "killed": how is not None,
                            "how": how or "SURVIVED",
                        }
                    )
                kinds_present = sorted({m.kind for m in catalog})
                mutations_doc = {
                    "ran": True,
                    "catalog": len(catalog),
                    "kinds": kinds_present,
                    "killed": killed,
                    "survived": len(catalog) - killed,
                    "kill_rate": (killed / len(catalog)) if catalog else 1.0,
                    "results": results,
                }
                if killed != len(catalog):
                    passed = False

        return CheckReport(
            program=self.program.name,
            seed=self.seed,
            field_bits=self.program.field.bits,
            passed=passed,
            oracle=oracle_doc,
            probes=probes_doc,
            mutations=mutations_doc,
        )


def check_program(
    program: CompiledProgram,
    *,
    reference: Callable[[list[int]], Sequence[int]] | None = None,
    input_generator: Callable[[random.Random], Sequence[int]] | None = None,
    validate: Callable[[list[int]], bool] | None = None,
    seed: int = 0,
    num_random: int = 6,
    input_bits: int = 8,
    mutations: bool = True,
    mutations_per_kind: int = 3,
) -> CheckReport:
    """Run the full differential check against one compiled program."""
    checker = ProgramChecker(
        program,
        reference=reference,
        input_generator=input_generator,
        validate=validate,
        seed=seed,
        num_random=num_random,
        input_bits=input_bits,
        mutations_per_kind=mutations_per_kind,
    )
    return checker.run(mutations=mutations)


def check_app(
    app,
    field,
    sizes: dict | None = None,
    *,
    seed: int = 0,
    num_random: int = 6,
    mutations: bool = True,
    mutations_per_kind: int = 3,
) -> CheckReport:
    """Check a :class:`repro.apps.BenchmarkApp` end to end."""
    program = app.compile(field, sizes)
    return check_program(
        program,
        reference=lambda v: app.reference(v, sizes),
        input_generator=lambda rng: app.generate_inputs(rng, sizes),
        validate=(lambda v: app.validate(v, sizes)) if app.validate_fn else None,
        seed=seed,
        num_random=num_random,
        mutations=mutations,
        mutations_per_kind=mutations_per_kind,
    )
