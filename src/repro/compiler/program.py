"""Compiled programs: the end-to-end compiler entry point.

``compile_program`` runs a builder function once to produce the Ginger
constraint system, applies the §4 transform to obtain Zaatar's
quadratic form, and canonicalizes variable numbering into the §A.1
convention.  The result bundles everything both parties need:

* the verifier reads the constraint systems (and their sizes, for the
  cost model);
* the prover calls ``solve`` per input to execute Ψ and extract the
  satisfying assignment (Figure 1, steps Á).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..constraints import (
    EncodingStats,
    GingerSystem,
    QuadraticSystem,
    TransformResult,
    apply_permutation,
    encoding_stats,
    extend_witness,
    ginger_to_quadratic,
    split_assignment,
)
from ..field import PrimeField
from .builder import Builder

#: a program is a function that wires up a Builder (inputs → outputs)
BuildFn = Callable[[Builder], None]


@dataclass
class SolvedInstance:
    """One solved computation instance, in every coordinate system."""

    input_values: list[int]
    output_values: list[int]
    ginger_witness: list[int]        # full assignment, builder numbering
    quadratic_witness: list[int]     # canonical numbering, w[0] == 1
    z: list[int]                     # unbound part (what πz encodes)
    x: list[int]
    y: list[int]


@dataclass
class CompiledProgram:
    """A computation Ψ compiled to both constraint languages."""

    name: str
    field: PrimeField
    builder: Builder
    ginger: GingerSystem
    transform: TransformResult
    quadratic: QuadraticSystem       # canonical ordering (§A.1)
    canonical_perm: list[int]

    @property
    def num_inputs(self) -> int:
        """|x|: number of input elements."""
        return len(self.ginger.input_vars)

    @property
    def num_outputs(self) -> int:
        """|y|: number of output elements."""
        return len(self.ginger.output_vars)

    def solve(self, input_values: Sequence[int], *, check: bool = True) -> SolvedInstance:
        """Execute Ψ on concrete inputs; returns witness + outputs.

        ``check=True`` verifies the witness against both constraint
        systems — cheap insurance that every gadget's hints agree with
        its constraints.
        """
        field = self.field
        inputs = [field.reduce(v) for v in input_values]
        w_ginger = self.builder.solve(inputs)
        if check and not self.ginger.is_satisfied(w_ginger):
            raise RuntimeError(
                f"{self.name}: hints produced an unsatisfying Ginger assignment"
            )
        w_quad = extend_witness(self.ginger, self.transform, w_ginger)
        w_canon = apply_permutation(self.canonical_perm, w_quad)
        if check and not self.quadratic.is_satisfied(w_canon):
            raise RuntimeError(
                f"{self.name}: transformed witness violates quadratic form"
            )
        z, x, y = split_assignment(self.quadratic, w_canon)
        outputs = [w_ginger[v] for v in self.ginger.output_vars]
        return SolvedInstance(
            input_values=inputs,
            output_values=outputs,
            ginger_witness=w_ginger,
            quadratic_witness=w_canon,
            z=z,
            x=x,
            y=y,
        )

    def stats(self) -> EncodingStats:
        """Figure-9 encoding sizes for this computation."""
        return encoding_stats(self.ginger, self.transform)


def compile_program(
    field: PrimeField,
    build_fn: BuildFn,
    *,
    name: str = "computation",
    bit_width: int = 32,
    optimize: bool = False,
) -> CompiledProgram:
    """Compile a builder function into a ``CompiledProgram``.

    ``optimize=True`` enables common-subexpression elimination (shared
    materializations and bit decompositions); semantics are identical,
    constraint counts shrink.
    """
    builder = Builder(field, default_bit_width=bit_width, enable_cse=optimize)
    build_fn(builder)
    if not builder.system.output_vars:
        raise ValueError(f"{name}: program declared no outputs")
    transform = ginger_to_quadratic(builder.system)
    canonical, perm = transform.system.canonicalize()
    return CompiledProgram(
        name=name,
        field=field,
        builder=builder,
        ginger=builder.system,
        transform=transform,
        quadratic=canonical,
        canonical_perm=perm,
    )
