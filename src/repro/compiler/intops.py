"""Integer operations the paper's compiler lacked (§5.4).

"Less fundamentally, our compiler lacks support for certain program
constructs, such as bitwise operations, division, and square root
operations.  However, this is engineering."  This module is that
engineering:

* bitwise AND/OR/XOR/NOT and shifts over ``width``-bit values, via
  shared bit decompositions;
* Euclidean division and remainder (quotient/remainder hints pinned by
  ``x = q·d + r`` with range checks ``0 ≤ r < d``);
* integer square root (hint pinned by ``s² ≤ x < (s+1)²``).

All hint variables introduced here are fully constrained: the witness
tests perturb each hint and watch the constraint system reject it.
"""

from __future__ import annotations

from .builder import Builder, Wire
from .gadgets import assert_less_than, to_bits


class BitVector:
    """A value together with its ``width`` boolean wires (LSB first).

    Sharing one decomposition across several bitwise operations is the
    standard way to avoid paying O(width) constraints per operator.
    """

    def __init__(self, builder: Builder, value: Wire, bits: list[Wire]):
        self.builder = builder
        self.value = value
        self.bits = bits

    @property
    def width(self) -> int:
        """Number of bits in the decomposition."""
        return len(self.bits)

    @classmethod
    def decompose(cls, b: Builder, x: Wire | int, width: int) -> "BitVector":
        x_w = x if isinstance(x, Wire) else b.constant(x)
        x_w = b.define(x_w)
        return cls(b, x_w, to_bits(b, x_w, width))

    @classmethod
    def from_bits(cls, b: Builder, bits: list[Wire]) -> "BitVector":
        acc: Wire | int = 0
        for i, bit in enumerate(bits):
            acc = acc + bit * (1 << i)
        value = b.define(acc if isinstance(acc, Wire) else b.constant(acc))
        return cls(b, value, list(bits))

    def _check_width(self, other: "BitVector") -> None:
        if self.width != other.width:
            raise ValueError(
                f"bit-width mismatch: {self.width} vs {other.width}"
            )


def bitwise_and(x: BitVector, y: BitVector) -> BitVector:
    """One multiplication per bit: aᵢ·bᵢ."""
    x._check_width(y)
    b = x.builder
    return BitVector.from_bits(b, [xb * yb for xb, yb in zip(x.bits, y.bits)])


def bitwise_or(x: BitVector, y: BitVector) -> BitVector:
    """Per-bit OR: aᵢ + bᵢ − aᵢ·bᵢ."""
    x._check_width(y)
    b = x.builder
    return BitVector.from_bits(
        b, [xb + yb - xb * yb for xb, yb in zip(x.bits, y.bits)]
    )


def bitwise_xor(x: BitVector, y: BitVector) -> BitVector:
    """Per-bit XOR: aᵢ + bᵢ − 2·aᵢ·bᵢ."""
    x._check_width(y)
    b = x.builder
    return BitVector.from_bits(
        b, [xb + yb - 2 * (xb * yb) for xb, yb in zip(x.bits, y.bits)]
    )


def bitwise_not(x: BitVector) -> BitVector:
    """Per-bit complement: 1 − aᵢ (free — no new constraints)."""
    b = x.builder
    return BitVector.from_bits(b, [1 - bit for bit in x.bits])


def shift_left(x: BitVector, amount: int) -> BitVector:
    """Logical shift within the fixed width (high bits drop off)."""
    if amount < 0:
        raise ValueError("shift amount must be non-negative")
    b = x.builder
    zero = b.constant(0)
    bits = [zero] * min(amount, x.width) + x.bits[: max(0, x.width - amount)]
    return BitVector.from_bits(b, bits)


def shift_right(x: BitVector, amount: int) -> BitVector:
    """Logical right shift within the fixed width."""
    if amount < 0:
        raise ValueError("shift amount must be non-negative")
    b = x.builder
    zero = b.constant(0)
    bits = x.bits[amount:] + [zero] * min(amount, x.width)
    return BitVector.from_bits(b, bits)


def div_mod(
    b: Builder, x: Wire | int, d: Wire | int, *, bit_width: int | None = None
) -> tuple[Wire, Wire]:
    """Euclidean (q, r) with x = q·d + r and 0 ≤ r < d.

    Both operands must be non-negative ``bit_width``-bit values and d
    must be nonzero at solve time (the hint returns 0s for d = 0 and
    the range constraint then fails, surfacing the error).
    """
    width = bit_width if bit_width is not None else b.default_bit_width
    p = b.field.p
    if ((1 << width) - 1) ** 2 + (1 << width) - 1 >= p:
        # Soundness needs q·d + r to be wrap-free: with q, d, r all
        # width-bit values the true integer q·d + r can reach
        # (2^w−1)² + (2^w−1), and once that crosses p a cheating
        # (q', r') = (q + ⌊(p+r)/d⌋, (p+r) mod d) passes every range
        # check while q'·d + r' ≡ x (mod p).  Goldilocks at width 32
        # is exactly safe (the maximum is p−1); width 33 is not.
        raise ValueError(
            f"div_mod bit_width {width} unsound for this field: "
            f"(2^{width}-1)^2 + 2^{width}-1 wraps mod p "
            f"(p has {p.bit_length()} bits)"
        )
    x_w = b.define(x if isinstance(x, Wire) else b.constant(x))
    d_w = b.define(d if isinstance(d, Wire) else b.constant(d))
    x_expr, d_expr = x_w.expr, d_w.expr

    def q_hint(values):
        dv = d_expr.evaluate(p, values)
        return x_expr.evaluate(p, values) // dv if dv else 0

    def r_hint(values):
        dv = d_expr.evaluate(p, values)
        return x_expr.evaluate(p, values) % dv if dv else 1

    q = b.hint_var(q_hint)
    r = b.hint_var(r_hint)
    b.assert_zero(q * d_w + r - x_w)
    # 0 ≤ r < d  and  q fits in width bits (rules out wraparound)
    to_bits(b, r, width)
    to_bits(b, q, width)
    assert_less_than(b, r, d_w, bit_width=width)
    return q, r


def integer_sqrt(b: Builder, x: Wire | int, *, bit_width: int | None = None) -> Wire:
    """⌊√x⌋ for a non-negative ``bit_width``-bit value.

    Pinned by  s² ≤ x  and  x < (s+1)²,  each as a range-checked
    difference.
    """
    width = bit_width if bit_width is not None else b.default_bit_width
    p = b.field.p
    if (1 << (width + 3)) + (1 << width) > p:
        # s is range-checked to ~width/2+1 bits, so s² can reach
        # ~2^(width+3); the x − s² range proof is only wrap-free while
        # p − 2^(width+3) stays above 2^width, else an oversized s
        # wraps x − s² back into the accepted range.
        raise ValueError(
            f"integer_sqrt bit_width {width} unsound for this field "
            f"(need 2^(width+3) + 2^width <= p; p has {p.bit_length()} bits)"
        )
    x_w = b.define(x if isinstance(x, Wire) else b.constant(x))
    x_expr = x_w.expr

    def s_hint(values):
        import math

        return math.isqrt(x_expr.evaluate(p, values))

    s = b.hint_var(s_hint)
    to_bits(b, s, (width + 1) // 2 + 1)
    # x − s² ∈ [0, 2^width)
    to_bits(b, x_w - s * s, width)
    # (s+1)² − x − 1 ∈ [0, 2^(width+2))  (the +2 covers (s+1)² slightly
    # exceeding the width-bit range when x is just below a square)
    to_bits(b, (s + 1) * (s + 1) - x_w - 1, width + 2)
    return s
