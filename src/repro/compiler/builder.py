"""The circuit builder: programs → Ginger constraints + witness hints.

This plays the role of the Ginger/Zaatar compiler pipeline (§2.2, §4,
[16]): a computation is expressed as straight-line Python over symbolic
``Wire`` values (loops are unrolled by the host language, conditionals
become selects — exactly what the SFDL compiler does internally), and
the builder records

* one Ginger constraint per assignment statement / gadget step, and
* one *witness hint* per variable, so the prover can later solve the
  constraints for any concrete input (Figure 1, step Á) by replaying
  the program.

The Zaatar quadratic form is obtained afterwards by the §4 transform
(see ``program.CompiledProgram``).
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..constraints.ginger import GingerSystem
from ..field import PrimeField
from .expr import DegreeOverflow, Expr

#: a hint computes one variable's value from all earlier values
#: (``values`` is indexed by variable, values[0] == 1)
Hint = Callable[[list[int]], int]


class Wire:
    """A symbolic value inside a program being compiled."""

    __slots__ = ("builder", "expr")

    def __init__(self, builder: "Builder", expr: Expr):
        self.builder = builder
        self.expr = expr

    # -- arithmetic operators ---------------------------------------------------

    def _wrap(self, other: "Wire | int") -> "Wire":
        if isinstance(other, Wire):
            if other.builder is not self.builder:
                raise ValueError("cannot mix wires from different builders")
            return other
        if isinstance(other, int):
            return Wire(self.builder, Expr.const(other))
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: "Wire | int") -> "Wire":
        o = self._wrap(other)
        return Wire(self.builder, self.expr.add(o.expr))

    __radd__ = __add__

    def __sub__(self, other: "Wire | int") -> "Wire":
        o = self._wrap(other)
        return Wire(self.builder, self.expr.sub(o.expr))

    def __rsub__(self, other: "Wire | int") -> "Wire":
        o = self._wrap(other)
        return Wire(self.builder, o.expr.sub(self.expr))

    def __mul__(self, other: "Wire | int") -> "Wire":
        o = self._wrap(other)
        return self.builder.mul(self, o)

    __rmul__ = __mul__

    def __neg__(self) -> "Wire":
        return Wire(self.builder, self.expr.neg())

    def __repr__(self) -> str:
        return f"Wire({self.expr!r})"


class Builder:
    """Accumulates variables, hints, and Ginger constraints.

    ``enable_cse`` turns on common-subexpression elimination: repeated
    ``define`` of the same expression reuses one variable, and repeated
    bit decompositions of the same value share their bits (the paper's
    future-work list starts with "we need a better compiler"; this is
    the first pass such a compiler runs).  Off by default so constraint
    counts stay predictable for the cost accounting.
    """

    def __init__(
        self,
        field: PrimeField,
        *,
        default_bit_width: int = 32,
        enable_cse: bool = False,
    ):
        self.field = field
        self.system = GingerSystem(field=field)
        #: hints[i] computes variable i; None for inputs (provided externally)
        self.hints: list[Hint | None] = [None]  # index 0 = constant wire
        self.default_bit_width = default_bit_width
        self.enable_cse = enable_cse
        self._output_wires: list[Wire] = []
        self._define_cache: dict[tuple, int] = {}
        #: used by gadgets.to_bits: (expr key, width) → bit variable indices
        self.bits_cache: dict[tuple, list[int]] = {}

    # -- variables ---------------------------------------------------------------

    def _new_var(self, hint: Hint | None) -> int:
        self.system.num_vars += 1
        self.hints.append(hint)
        return self.system.num_vars

    def input(self) -> Wire:
        """Fresh distinguished input variable (an element of X)."""
        idx = self._new_var(None)
        self.system.input_vars.append(idx)
        return Wire(self, Expr.var(idx))

    def inputs(self, count: int) -> list[Wire]:
        """``count`` fresh input variables, in order."""
        return [self.input() for _ in range(count)]

    def constant(self, value: int) -> Wire:
        """A constant-valued wire (no variable allocated)."""
        return Wire(self, Expr.const(value))

    def hint_var(self, hint: Hint) -> Wire:
        """Unconstrained auxiliary variable with a solver hint.

        The caller *must* add constraints pinning it down — an
        unconstrained hint variable would let a cheating prover choose
        its value freely.  Gadgets in ``gadgets.py`` follow this rule.
        """
        return Wire(self, Expr.var(self._new_var(hint)))

    # -- statements -----------------------------------------------------------------

    def assert_zero(self, wire: "Wire | int") -> None:
        """Emit the constraint ``wire = 0``."""
        if isinstance(wire, int):
            if wire % self.field.p:
                raise ValueError(f"constant {wire} asserted to be zero")
            return
        self.system.add(wire.expr.to_constraint())

    def assert_equal(self, a: "Wire | int", b: "Wire | int") -> None:
        """Emit the constraint ``a = b``."""
        a_w = a if isinstance(a, Wire) else self.constant(a)
        self.assert_zero(a_w - b)

    def define(self, wire: "Wire | int") -> Wire:
        """Materialize an expression into a single fresh variable.

        Emits the assignment statement's constraint (expr − new = 0) and
        a hint that replays the expression.  Already-single-variable
        wires are returned unchanged; with CSE enabled, an expression
        already materialized earlier reuses its variable.
        """
        if isinstance(wire, int):
            wire = self.constant(wire)
        if wire.expr.as_single_variable() is not None:
            return wire
        expr = wire.expr
        key = None
        if self.enable_cse:
            key = self.expr_key(expr)
            cached = self._define_cache.get(key)
            if cached is not None:
                return Wire(self, Expr.var(cached))
        p = self.field.p
        idx = self._new_var(lambda values, e=expr: e.evaluate(p, values))
        self.system.add(expr.sub(Expr.var(idx)).to_constraint())
        if key is not None:
            self._define_cache[key] = idx
        return Wire(self, Expr.var(idx))

    def expr_key(self, expr: Expr) -> tuple:
        """Canonical hashable form of an expression (coefficients mod p)."""
        p = self.field.p
        linear = tuple(
            sorted((i, c % p) for i, c in expr.linear.items() if c % p)
        )
        quadratic = tuple(
            sorted((pair, c % p) for pair, c in expr.quadratic.items() if c % p)
        )
        return (expr.constant % p, linear, quadratic)

    def mul(self, a: Wire, b: Wire) -> Wire:
        """Product, materializing operands if the degree would exceed 2."""
        try:
            return Wire(self, a.expr.mul(b.expr))
        except DegreeOverflow:
            pass
        # Materialize the degree-2 side(s) and retry.
        if a.expr.degree() > 1:
            a = self.define(a)
        if b.expr.degree() > 1:
            b = self.define(b)
        return Wire(self, a.expr.mul(b.expr))

    # -- outputs -------------------------------------------------------------------

    def output(self, wire: "Wire | int") -> Wire:
        """Mark a wire as a distinguished output variable (element of Y).

        Outputs must be plain variables not doubling as inputs or other
        outputs, so anything else is materialized first.
        """
        if isinstance(wire, int):
            wire = self.constant(wire)
        idx = wire.expr.as_single_variable()
        taken = set(self.system.input_vars) | set(self.system.output_vars)
        if idx is None or idx in taken:
            wire = self.define_fresh(wire)
            idx = wire.expr.as_single_variable()
        assert idx is not None
        self.system.output_vars.append(idx)
        self._output_wires.append(wire)
        return wire

    def define_fresh(self, wire: Wire) -> Wire:
        """Like ``define`` but always allocates, even for single variables."""
        expr = wire.expr
        p = self.field.p
        idx = self._new_var(lambda values, e=expr: e.evaluate(p, values))
        self.system.add(expr.sub(Expr.var(idx)).to_constraint())
        return Wire(self, Expr.var(idx))

    def outputs(self, wires: Sequence["Wire | int"]) -> list[Wire]:
        """Mark several wires as outputs, in order."""
        return [self.output(w) for w in wires]

    # -- witness solving ----------------------------------------------------------

    def solve(self, input_values: Sequence[int]) -> list[int]:
        """Replay the hints to produce a full satisfying assignment.

        This is the prover's "solve the constraints" step (Figure 1,
        step Á; the "solve constraints" column of Figure 5).  Raises if
        the resulting assignment does not satisfy the system — that
        would mean a gadget registered an inconsistent hint.
        """
        if len(input_values) != len(self.system.input_vars):
            raise ValueError(
                f"program has {len(self.system.input_vars)} inputs, "
                f"got {len(input_values)}"
            )
        p = self.field.p
        values: list[int] = [0] * (self.system.num_vars + 1)
        values[0] = 1
        provided = {
            var: val % p for var, val in zip(self.system.input_vars, input_values)
        }
        for idx in range(1, self.system.num_vars + 1):
            hint = self.hints[idx]
            if hint is None:
                if idx not in provided:
                    raise RuntimeError(f"variable W{idx} has no hint and no input value")
                values[idx] = provided[idx]
            else:
                values[idx] = hint(values) % p
        return values
