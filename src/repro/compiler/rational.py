"""Rational-number wires (numerator/denominator pairs).

The paper's bisection and Floyd-Warshall benchmarks take rational
inputs ("32-bit numerators, 5-bit denominators" / "32-bit numerators,
32-bit denominators", §5.1); Ginger's representation of primitive
floating-point values is exactly such pairs [54].  A ``RationalWire``
keeps both components as field wires with *positive* denominators (an
invariant every operation preserves), so ordering reduces to a signed
cross-multiplication test.

Denominators grow under addition (d₁·d₂), which is why the paper needs
a 220-bit field for L=8 bisection iterations — the same bound governs
the ``bit_budget`` bookkeeping here.
"""

from __future__ import annotations

from dataclasses import dataclass

from .builder import Builder, Wire
from .gadgets import less_than, select


@dataclass
class RationalWire:
    """A symbolic rational n/d with d > 0 by construction."""

    num: Wire
    den: Wire
    #: conservative magnitude bounds, in bits, for comparison sizing
    num_bits: int
    den_bits: int

    @property
    def builder(self) -> Builder:
        """The builder both component wires belong to."""
        return self.num.builder


def rational_input(b: Builder, *, num_bits: int = 32, den_bits: int = 5) -> RationalWire:
    """A rational input as two input variables (numerator, denominator)."""
    return RationalWire(b.input(), b.input(), num_bits, den_bits)


def rational_const(b: Builder, num: int, den: int = 1) -> RationalWire:
    """A compile-time rational constant num/den (den > 0)."""
    if den <= 0:
        raise ValueError("rational constants need positive denominators")
    return RationalWire(
        b.constant(num), b.constant(den), max(abs(num).bit_length(), 1), den.bit_length()
    )


def rational_add(b: Builder, x: RationalWire, y: RationalWire) -> RationalWire:
    """x + y by cross-multiplication; denominators multiply."""
    num = x.num * y.den + y.num * x.den
    den = x.den * y.den
    return RationalWire(
        b.define(num),
        b.define(den),
        max(x.num_bits + y.den_bits, y.num_bits + x.den_bits) + 1,
        x.den_bits + y.den_bits,
    )


def rational_sub(b: Builder, x: RationalWire, y: RationalWire) -> RationalWire:
    """x − y."""
    return rational_add(b, x, rational_neg(b, y))


def rational_neg(b: Builder, x: RationalWire) -> RationalWire:
    """−x (negated numerator; denominator untouched, stays positive)."""
    return RationalWire(-x.num, x.den, x.num_bits, x.den_bits)


def rational_mul(b: Builder, x: RationalWire, y: RationalWire) -> RationalWire:
    """x · y componentwise."""
    return RationalWire(
        b.define(x.num * y.num),
        b.define(x.den * y.den),
        x.num_bits + y.num_bits,
        x.den_bits + y.den_bits,
    )


def rational_scale(b: Builder, c: int, x: RationalWire) -> RationalWire:
    """Integer scalar multiple c·x."""
    return RationalWire(
        b.define(x.num * c), x.den, x.num_bits + abs(c).bit_length(), x.den_bits
    )


def rational_half(b: Builder, x: RationalWire) -> RationalWire:
    """x / 2 by doubling the denominator (exact; used by bisection)."""
    return RationalWire(x.num, b.define(x.den * 2), x.num_bits, x.den_bits + 1)


def rational_less_than(b: Builder, x: RationalWire, y: RationalWire) -> Wire:
    """x < y via n_x·d_y < n_y·d_x (valid because denominators are positive)."""
    lhs = b.define(x.num * y.den)
    rhs = b.define(y.num * x.den)
    width = max(x.num_bits + y.den_bits, y.num_bits + x.den_bits) + 1
    return less_than(b, lhs, rhs, bit_width=width)


def rational_select(
    b: Builder, cond: Wire, if_true: RationalWire, if_false: RationalWire
) -> RationalWire:
    """Componentwise select between two rationals (cond boolean)."""
    return RationalWire(
        select(b, cond, if_true.num, if_false.num),
        select(b, cond, if_true.den, if_false.den),
        max(if_true.num_bits, if_false.num_bits),
        max(if_true.den_bits, if_false.den_bits),
    )


def rational_sign(b: Builder, x: RationalWire) -> Wire:
    """Boolean wire: 1 if x < 0 (denominator positivity makes this the
    sign of the numerator)."""
    return less_than(b, x.num, 0, bit_width=x.num_bits + 1)


def rational_output(b: Builder, x: RationalWire) -> tuple[Wire, Wire]:
    """Expose a rational result as a (numerator, denominator) output pair."""
    return b.output(x.num), b.output(x.den)


def rational_value(num: int, den: int) -> float:
    """Host-side helper: interpret an output pair (for examples/tests)."""
    return num / den
