"""A small textual language compiled to constraints.

Zaatar "takes a high-level language as input" (its compiler descends
from Fairplay's SFDL front end, §1, §5.1).  This module provides an
analogous front end: a C-like language with static control flow that
lowers onto the ``Builder`` DSL.  Example::

    input x[4]
    output y
    var acc
    acc = 0
    for i in 0..4 {
        acc = acc + x[i] * x[i]
    }
    if (acc < 100) { y = acc } else { y = 100 }

Language rules (all of which mirror the paper's compiler, §2.2, §5.4):

* loop bounds and array indices are compile-time integers (loops are
  fully unrolled; "array indices that are not known at compile time
  produce an excessive number of constraints" — use the explicit
  ``array_get`` gadget from the DSL if you really want that);
* ``if`` executes both branches symbolically and merges assignments
  with selects;
* comparisons expand into O(bit_width) constraints
  (pseudoconstraints);
* every ``output`` variable must be assigned exactly once on every
  path (checked at the end of elaboration).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from ..field import PrimeField
from .builder import Builder, Wire
from .gadgets import (
    is_equal,
    is_zero,
    less_than,
    logical_and,
    logical_not,
    logical_or,
    select,
)
from .program import CompiledProgram, compile_program

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<num>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>\.\.|==|!=|<=|>=|&&|\|\||[-+*=<>!(){}\[\],])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"input", "output", "var", "for", "in", "if", "else"}

#: built-in functions usable in expressions: name → arity
_BUILTINS = {"min": 2, "max": 2, "abs": 1}


@dataclass(frozen=True)
class Token:
    kind: str  # 'num' | 'name' | 'op' | 'kw' | 'eof'
    text: str
    pos: int


class LangSyntaxError(ValueError):
    """Parse or elaboration error with source position context."""


def tokenize(source: str) -> list[Token]:
    """Split source text into tokens (whitespace and comments dropped)."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if not m:
            raise LangSyntaxError(f"unexpected character {source[pos]!r} at offset {pos}")
        pos = m.end()
        if m.lastgroup == "ws":
            continue
        kind = m.lastgroup or "op"
        text = m.group()
        if kind == "name" and text in _KEYWORDS:
            kind = "kw"
        tokens.append(Token(kind, text, m.start()))
    tokens.append(Token("eof", "", len(source)))
    return tokens


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Decl:
    role: str  # 'input' | 'output' | 'var'
    name: str
    size: int | None  # None for scalars


@dataclass(frozen=True)
class Num:
    value: int


@dataclass(frozen=True)
class Name:
    name: str


@dataclass(frozen=True)
class Index:
    name: str
    index: "ExprNode"


@dataclass(frozen=True)
class Unary:
    op: str  # '-' | '!'
    operand: "ExprNode"


@dataclass(frozen=True)
class Binary:
    op: str
    left: "ExprNode"
    right: "ExprNode"


@dataclass(frozen=True)
class Call:
    name: str  # 'min' | 'max' | 'abs'
    args: tuple["ExprNode", ...]


ExprNode = Num | Name | Index | Unary | Binary | Call


@dataclass(frozen=True)
class Assign:
    target: Name | Index
    value: ExprNode


@dataclass(frozen=True)
class For:
    var: str
    start: ExprNode
    stop: ExprNode
    body: tuple["StmtNode", ...]


@dataclass(frozen=True)
class If:
    cond: ExprNode
    then: tuple["StmtNode", ...]
    orelse: tuple["StmtNode", ...]


StmtNode = Assign | For | If


@dataclass(frozen=True)
class Program:
    decls: tuple[Decl, ...]
    body: tuple[StmtNode, ...]


# ---------------------------------------------------------------------------
# Parser (recursive descent)
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.i = 0

    def peek(self) -> Token:
        return self.tokens[self.i]

    def next(self) -> Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise LangSyntaxError(f"expected {want!r}, got {tok.text!r} at offset {tok.pos}")
        return tok

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    # -- declarations ------------------------------------------------------------

    def parse_program(self) -> Program:
        decls: list[Decl] = []
        while self.peek().kind == "kw" and self.peek().text in ("input", "output", "var"):
            decls.append(self.parse_decl())
        body = self.parse_stmts_until_eof()
        return Program(tuple(decls), tuple(body))

    def parse_decl(self) -> Decl:
        role = self.next().text
        name = self.expect("name").text
        size = None
        if self.accept("op", "["):
            size = int(self.expect("num").text)
            self.expect("op", "]")
        return Decl(role, name, size)

    # -- statements ------------------------------------------------------------------

    def parse_stmts_until_eof(self) -> list[StmtNode]:
        out = []
        while self.peek().kind != "eof":
            out.append(self.parse_stmt())
        return out

    def parse_block(self) -> tuple[StmtNode, ...]:
        self.expect("op", "{")
        out = []
        while not self.accept("op", "}"):
            if self.peek().kind == "eof":
                raise LangSyntaxError("unterminated block")
            out.append(self.parse_stmt())
        return tuple(out)

    def parse_stmt(self) -> StmtNode:
        tok = self.peek()
        if tok.kind == "kw" and tok.text == "for":
            return self.parse_for()
        if tok.kind == "kw" and tok.text == "if":
            return self.parse_if()
        if tok.kind == "name":
            return self.parse_assign()
        raise LangSyntaxError(f"unexpected token {tok.text!r} at offset {tok.pos}")

    def parse_for(self) -> For:
        self.expect("kw", "for")
        var = self.expect("name").text
        self.expect("kw", "in")
        start = self.parse_expr()
        self.expect("op", "..")
        stop = self.parse_expr()
        body = self.parse_block()
        return For(var, start, stop, body)

    def parse_if(self) -> If:
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_block()
        orelse: tuple[StmtNode, ...] = ()
        if self.accept("kw", "else"):
            orelse = self.parse_block()
        return If(cond, then, orelse)

    def parse_assign(self) -> Assign:
        name = self.expect("name").text
        target: Name | Index = Name(name)
        if self.accept("op", "["):
            idx = self.parse_expr()
            self.expect("op", "]")
            target = Index(name, idx)
        self.expect("op", "=")
        value = self.parse_expr()
        return Assign(target, value)

    # -- expressions (precedence climbing) -----------------------------------------

    def parse_expr(self) -> ExprNode:
        return self.parse_or()

    def parse_or(self) -> ExprNode:
        node = self.parse_and()
        while self.accept("op", "||"):
            node = Binary("||", node, self.parse_and())
        return node

    def parse_and(self) -> ExprNode:
        node = self.parse_cmp()
        while self.accept("op", "&&"):
            node = Binary("&&", node, self.parse_cmp())
        return node

    def parse_cmp(self) -> ExprNode:
        node = self.parse_addsub()
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("==", "!=", "<", "<=", ">", ">="):
            self.next()
            node = Binary(tok.text, node, self.parse_addsub())
        return node

    def parse_addsub(self) -> ExprNode:
        node = self.parse_term()
        while True:
            tok = self.peek()
            if tok.kind == "op" and tok.text in ("+", "-"):
                self.next()
                node = Binary(tok.text, node, self.parse_term())
            else:
                return node

    def parse_term(self) -> ExprNode:
        node = self.parse_unary()
        while self.accept("op", "*"):
            node = Binary("*", node, self.parse_unary())
        return node

    def parse_unary(self) -> ExprNode:
        if self.accept("op", "-"):
            return Unary("-", self.parse_unary())
        if self.accept("op", "!"):
            return Unary("!", self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> ExprNode:
        tok = self.next()
        if tok.kind == "num":
            return Num(int(tok.text))
        if tok.kind == "name":
            if tok.text in _BUILTINS and self.accept("op", "("):
                args = [self.parse_expr()]
                while self.accept("op", ","):
                    args.append(self.parse_expr())
                self.expect("op", ")")
                return Call(tok.text, tuple(args))
            if self.accept("op", "["):
                idx = self.parse_expr()
                self.expect("op", "]")
                return Index(tok.text, idx)
            return Name(tok.text)
        if tok.kind == "op" and tok.text == "(":
            node = self.parse_expr()
            self.expect("op", ")")
            return node
        raise LangSyntaxError(f"unexpected token {tok.text!r} at offset {tok.pos}")


def parse(source: str) -> Program:
    """Parse source text into the language AST."""
    return _Parser(tokenize(source)).parse_program()


# ---------------------------------------------------------------------------
# Elaboration: AST → Builder calls
# ---------------------------------------------------------------------------

Value = "Wire | int"  # env values: wires, or python ints for loop variables


class _Elaborator:
    def __init__(self, builder: Builder, program: Program):
        self.b = builder
        self.program = program
        self.env: dict[str, Wire | int | list] = {}
        self.output_names: list[tuple[str, int | None]] = []

    # -- entry ---------------------------------------------------------------------

    def run(self) -> None:
        for decl in self.program.decls:
            if decl.name in self.env:
                raise LangSyntaxError(f"duplicate declaration of {decl.name!r}")
            if decl.role == "input":
                if decl.size is None:
                    self.env[decl.name] = self.b.input()
                else:
                    self.env[decl.name] = self.b.inputs(decl.size)
            else:
                init = self.b.constant(0)
                if decl.size is None:
                    self.env[decl.name] = init
                else:
                    self.env[decl.name] = [self.b.constant(0) for _ in range(decl.size)]
                if decl.role == "output":
                    self.output_names.append((decl.name, decl.size))
        for stmt in self.program.body:
            self.exec_stmt(stmt)
        for name, size in self.output_names:
            value = self.env[name]
            if size is None:
                self.b.output(self._as_wire(value))
            else:
                assert isinstance(value, list)
                for elem in value:
                    self.b.output(self._as_wire(elem))

    # -- statements -----------------------------------------------------------------

    def exec_stmt(self, stmt: StmtNode) -> None:
        if isinstance(stmt, Assign):
            self.exec_assign(stmt)
        elif isinstance(stmt, For):
            self.exec_for(stmt)
        elif isinstance(stmt, If):
            self.exec_if(stmt)
        else:  # pragma: no cover
            raise TypeError(f"unknown statement {stmt!r}")

    def exec_assign(self, stmt: Assign) -> None:
        value = self.eval_expr(stmt.value)
        if isinstance(stmt.target, Name):
            name = stmt.target.name
            if name not in self.env:
                raise LangSyntaxError(f"assignment to undeclared variable {name!r}")
            if isinstance(self.env[name], list):
                raise LangSyntaxError(f"cannot assign scalar to array {name!r}")
            self.env[name] = value
        else:
            name = stmt.target.name
            arr = self.env.get(name)
            if not isinstance(arr, list):
                raise LangSyntaxError(f"{name!r} is not an array")
            idx = self.eval_static(stmt.target.index)
            if not 0 <= idx < len(arr):
                raise LangSyntaxError(f"index {idx} out of range for {name!r}")
            arr[idx] = value

    def exec_for(self, stmt: For) -> None:
        start = self.eval_static(stmt.start)
        stop = self.eval_static(stmt.stop)
        shadowed = self.env.get(stmt.var, _MISSING)
        for i in range(start, stop):
            self.env[stmt.var] = i
            for inner in stmt.body:
                self.exec_stmt(inner)
        if shadowed is _MISSING:
            self.env.pop(stmt.var, None)
        else:
            self.env[stmt.var] = shadowed

    def exec_if(self, stmt: If) -> None:
        cond = self.eval_expr(stmt.cond)
        if isinstance(cond, int):
            # statically decidable condition: elaborate one branch only
            branch = stmt.then if cond else stmt.orelse
            for inner in branch:
                self.exec_stmt(inner)
            return
        before = _snapshot(self.env)
        for inner in stmt.then:
            self.exec_stmt(inner)
        then_env = _snapshot(self.env)
        self.env = _restore(before)
        for inner in stmt.orelse:
            self.exec_stmt(inner)
        else_env = _snapshot(self.env)
        self.env = _merge_envs(self.b, cond, then_env, else_env)

    # -- expressions -------------------------------------------------------------------

    def eval_expr(self, node: ExprNode) -> Wire | int:
        if isinstance(node, Num):
            return node.value
        if isinstance(node, Name):
            value = self.env.get(node.name)
            if value is None:
                raise LangSyntaxError(f"undefined variable {node.name!r}")
            if isinstance(value, list):
                raise LangSyntaxError(f"array {node.name!r} used as a scalar")
            return value
        if isinstance(node, Index):
            arr = self.env.get(node.name)
            if not isinstance(arr, list):
                raise LangSyntaxError(f"{node.name!r} is not an array")
            idx = self.eval_static(node.index)
            if not 0 <= idx < len(arr):
                raise LangSyntaxError(f"index {idx} out of range for {node.name!r}")
            return arr[idx]
        if isinstance(node, Unary):
            operand = self.eval_expr(node.operand)
            if node.op == "-":
                return -operand if isinstance(operand, int) else -operand
            # '!': logical not on a boolean wire or int
            if isinstance(operand, int):
                return 0 if operand else 1
            return logical_not(self.b, operand)
        if isinstance(node, Binary):
            return self.eval_binary(node)
        if isinstance(node, Call):
            return self.eval_call(node)
        raise TypeError(f"unknown expression {node!r}")  # pragma: no cover

    def eval_call(self, node: Call):
        from .gadgets import absolute, maximum, minimum

        if len(node.args) != _BUILTINS[node.name]:
            raise LangSyntaxError(
                f"{node.name}() takes {_BUILTINS[node.name]} arguments, "
                f"got {len(node.args)}"
            )
        args = [self.eval_expr(a) for a in node.args]
        if all(isinstance(a, int) for a in args):
            return {"min": min, "max": max, "abs": abs}[node.name](*args)
        wires = [self._as_wire(a) for a in args]
        if node.name == "min":
            return minimum(self.b, wires[0], wires[1])
        if node.name == "max":
            return maximum(self.b, wires[0], wires[1])
        return absolute(self.b, wires[0])

    def eval_binary(self, node: Binary) -> Wire | int:
        left = self.eval_expr(node.left)
        right = self.eval_expr(node.right)
        op = node.op
        if isinstance(left, int) and isinstance(right, int):
            return _static_binary(op, left, right)
        lw = self._as_wire(left)
        rw = self._as_wire(right)
        if op == "+":
            return lw + rw
        if op == "-":
            return lw - rw
        if op == "*":
            return lw * rw
        if op == "==":
            return is_equal(self.b, lw, rw)
        if op == "!=":
            return logical_not(self.b, is_equal(self.b, lw, rw))
        if op == "<":
            return less_than(self.b, lw, rw)
        if op == "<=":
            return logical_not(self.b, less_than(self.b, rw, lw))
        if op == ">":
            return less_than(self.b, rw, lw)
        if op == ">=":
            return logical_not(self.b, less_than(self.b, lw, rw))
        if op == "&&":
            return logical_and(self.b, lw, rw)
        if op == "||":
            return logical_or(self.b, lw, rw)
        raise LangSyntaxError(f"unsupported operator {op!r}")

    def eval_static(self, node: ExprNode) -> int:
        """Compile-time integer evaluation (loop bounds, array indices)."""
        value = self.eval_expr(node)
        if not isinstance(value, int):
            raise LangSyntaxError(
                "expression must be a compile-time constant "
                "(loop variables and integer literals only)"
            )
        return value

    def _as_wire(self, value: Wire | int) -> Wire:
        return value if isinstance(value, Wire) else self.b.constant(value)


_MISSING = object()


def _static_binary(op: str, a: int, b: int) -> int:
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    raise LangSyntaxError(f"unsupported operator {op!r}")


def _snapshot(env: dict) -> dict:
    return {k: (list(v) if isinstance(v, list) else v) for k, v in env.items()}


def _restore(snapshot: dict) -> dict:
    return {k: (list(v) if isinstance(v, list) else v) for k, v in snapshot.items()}


def _merge_envs(builder: Builder, cond: Wire, then_env: dict, else_env: dict) -> dict:
    """Merge two branch environments with selects on differing values."""
    merged: dict = {}
    for key in then_env:
        t = then_env[key]
        e = else_env.get(key, t)
        if isinstance(t, list):
            assert isinstance(e, list) and len(t) == len(e)
            merged[key] = [_merge_value(builder, cond, a, b) for a, b in zip(t, e)]
        else:
            merged[key] = _merge_value(builder, cond, t, e)
    return merged


def _merge_value(builder: Builder, cond: Wire, t, e):
    if t is e:
        return t
    if isinstance(t, int) and isinstance(e, int) and t == e:
        return t
    t_w = t if isinstance(t, Wire) else builder.constant(t)
    e_w = e if isinstance(e, Wire) else builder.constant(e)
    return select(builder, cond, t_w, e_w)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def compile_source(
    field: PrimeField,
    source: str,
    *,
    name: str = "program",
    bit_width: int = 32,
    optimize: bool = False,
) -> CompiledProgram:
    """Compile language source text into a ``CompiledProgram``."""
    program = parse(source)

    def build(builder: Builder) -> None:
        _Elaborator(builder, program).run()

    return compile_program(
        field, build, name=name, bit_width=bit_width, optimize=optimize
    )
