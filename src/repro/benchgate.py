"""Benchmark trajectory gate: stamped artifacts + regression comparison.

The figure benches (``benchmarks/bench_*.py``) emit
``BENCH_<figure>.json`` artifacts.  Those numbers are only a
*trajectory* if successive artifacts are comparable — so
:func:`bench_metadata` stamps each one with a schema version, the git
revision, wall-clock timestamp, the resolved field backend, and the
python/numpy versions, and :func:`compare` diffs two stamped artifacts
metric-by-metric with a tolerance (``repro bench-check``, wired into
CI so a kernel change that quietly gives back the NTT speedup floors
fails the build rather than landing).

Which direction is "worse" is inferred from the metric's name
(:func:`direction`): names speaking of time — ``*_seconds``, ``wall``,
``cpu``, ``latency`` — regress upward, names speaking of rates —
``speedup``, ``throughput``, ``*_per_second`` — regress downward.
Metrics with no recognisable direction (sizes, counts, booleans,
identifiers) are structural and only checked for presence, never for
magnitude, so the gate never false-positives on, say, a constraint
count that legitimately changed.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

#: bumped when the artifact layout changes incompatibly;
#: ``compare`` refuses to diff artifacts across schema versions
BENCH_SCHEMA_VERSION = 1

#: leaf-name fragments implying smaller-is-better
_LOWER_BETTER = ("seconds", "wall", "cpu", "latency", "_s", "time")

#: leaf-name fragments implying larger-is-better
_HIGHER_BETTER = ("speedup", "throughput", "per_second", "ops_per")


def git_revision(cwd: str | Path | None = None) -> str | None:
    """The repo's HEAD commit hash, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


def bench_metadata(backend: str | None = None) -> dict[str, Any]:
    """The provenance stamp every bench artifact carries under ``meta``."""
    try:
        import numpy

        numpy_version: str | None = numpy.__version__
    except ImportError:
        numpy_version = None
    if backend is None:
        from .field import GOLDILOCKS, resolve_backend

        backend = resolve_backend(None, GOLDILOCKS.modulus).name
    return {
        "bench_schema": BENCH_SCHEMA_VERSION,
        "git_sha": git_revision(),
        "created_unix": time.time(),
        "backend": backend,
        "python": platform.python_version(),
        "numpy": numpy_version,
        "machine": platform.machine(),
    }


def parse_tolerance(text: str) -> float:
    """``"15%"`` or ``"0.15"`` -> 0.15; rejects negatives and garbage."""
    text = text.strip()
    try:
        value = float(text[:-1]) / 100 if text.endswith("%") else float(text)
    except ValueError:
        raise ValueError(f"unparseable tolerance {text!r} (want '15%' or '0.15')")
    if value < 0:
        raise ValueError(f"tolerance must be >= 0, got {text!r}")
    return value


def direction(path: tuple[str, ...]) -> str | None:
    """``"lower"``/``"higher"`` if the metric's worse-direction is clear.

    Decided from the leaf name alone — the container names are figure
    labels and app names, which say nothing about units.
    """
    leaf = path[-1].lower()
    for frag in _HIGHER_BETTER:
        if frag in leaf:
            return "higher"
    for frag in _LOWER_BETTER:
        if frag in leaf:
            return "lower"
    return None


def iter_metrics(value: Any, path: tuple[str, ...] = ()) -> Iterator[tuple[tuple[str, ...], float]]:
    """Every numeric leaf of a results tree, as (path, value) pairs.

    Booleans are structural (bit_identical flags), not metrics; list
    elements get their index as a path component so rows at the same
    position compare against each other.
    """
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        yield path, float(value)
    elif isinstance(value, dict):
        for key, sub in value.items():
            yield from iter_metrics(sub, path + (str(key),))
    elif isinstance(value, (list, tuple)):
        for i, sub in enumerate(value):
            yield from iter_metrics(sub, path + (str(i),))


@dataclass
class Regression:
    """One metric that moved past tolerance in its worse direction."""

    path: tuple[str, ...]
    direction: str
    baseline: float
    current: float

    @property
    def change(self) -> float:
        """Signed relative change, positive = worse."""
        if self.current == self.baseline:
            return 0.0  # no movement is never a regression, even from 0
        if self.baseline == 0:
            return float("inf")
        rel = (self.current - self.baseline) / abs(self.baseline)
        return rel if self.direction == "lower" else -rel

    def describe(self) -> str:
        """One human-readable line: metric, movement, relative change."""
        name = ".".join(self.path)
        arrow = "rose" if self.current > self.baseline else "fell"
        sense = "worse" if self.change > 0 else "better"
        return (
            f"{name}: {arrow} {self.baseline:.6g} -> {self.current:.6g} "
            f"({abs(self.change) * 100:.1f}% {sense}; "
            f"{self.direction}-is-better)"
        )


@dataclass
class BenchComparison:
    """The full diff of two artifacts: what regressed, moved, or vanished."""

    regressions: list[Regression] = field(default_factory=list)
    improvements: list[Regression] = field(default_factory=list)
    missing: list[tuple[str, ...]] = field(default_factory=list)
    compared: int = 0
    skipped_directionless: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when nothing regressed and nothing vanished."""
        return not self.regressions and not self.missing


def compare(
    baseline: dict[str, Any], current: dict[str, Any], max_regress: float
) -> BenchComparison:
    """Diff two ``BENCH_*.json`` documents under a relative tolerance.

    A directional metric regresses when it moves more than
    ``max_regress`` (relative) in its worse direction; a metric present
    in the baseline but absent from the current run counts as missing
    (silently dropping a measurement must not pass the gate).  Metrics
    new in the current run are fine — the trajectory grows.
    """
    comparison = BenchComparison()
    base_schema = (baseline.get("meta") or {}).get("bench_schema")
    cur_schema = (current.get("meta") or {}).get("bench_schema")
    if base_schema != cur_schema:
        comparison.notes.append(
            f"schema mismatch: baseline {base_schema!r} vs current {cur_schema!r}"
        )
    base_backend = (baseline.get("meta") or {}).get("backend")
    cur_backend = (current.get("meta") or {}).get("backend")
    if base_backend != cur_backend:
        comparison.notes.append(
            f"backend mismatch: baseline {base_backend!r} vs current "
            f"{cur_backend!r} — numbers are not comparable across backends"
        )
    base_metrics = dict(iter_metrics(baseline.get("results", {})))
    cur_metrics = dict(iter_metrics(current.get("results", {})))
    for path, base_value in base_metrics.items():
        if path not in cur_metrics:
            comparison.missing.append(path)
            continue
        sense = direction(path)
        if sense is None:
            comparison.skipped_directionless += 1
            continue
        comparison.compared += 1
        reg = Regression(path, sense, base_value, cur_metrics[path])
        if reg.change > max_regress:
            comparison.regressions.append(reg)
        elif reg.change < -max_regress:
            comparison.improvements.append(reg)
    comparison.regressions.sort(key=lambda r: r.change, reverse=True)
    comparison.improvements.sort(key=lambda r: r.change)
    return comparison


def check_files(
    baseline_path: str | Path, current_path: str | Path, max_regress: float
) -> BenchComparison:
    """File-level entry point used by ``repro bench-check``."""
    baseline = json.loads(Path(baseline_path).read_text())
    current = json.loads(Path(current_path).read_text())
    return compare(baseline, current, max_regress)
