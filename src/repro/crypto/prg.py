"""Pseudorandom generation of field elements from a ChaCha-keyed stream.

The cost-model parameter ``c`` (§5.1) is "the cost of pseudorandomly
generating an element in F"; this module is the thing being measured.
Both parties instantiate a ``FieldPRG`` from the same seed to derive
identical query vectors without shipping them over the network
(§A.1, network costs: "a random seed from which V and P derive the PCP
queries pseudorandomly").
"""

from __future__ import annotations

import hashlib

from ..field import PrimeField
from .chacha import ChaChaStream


class FieldPRG:
    """Draws uniform elements of a prime field by rejection sampling."""

    def __init__(self, field: PrimeField, seed: bytes | str | int, domain: str = ""):
        self.field = field
        key = _derive_key(seed, domain)
        self._stream = ChaChaStream(key)
        # Sample ceil(bits/8) + 8 bytes and reduce the rejection rate by
        # reading a few spare bits; strict rejection keeps uniformity.
        self._sample_bytes = (field.p.bit_length() + 7) // 8
        self._mask = (1 << (self._sample_bytes * 8)) - 1
        self._limit = self._mask + 1 - ((self._mask + 1) % field.p)

    def next_element(self) -> int:
        """One uniform draw from [0, p)."""
        while True:
            raw = int.from_bytes(self._stream.read(self._sample_bytes), "little")
            if raw < self._limit:
                return raw % self.field.p

    def next_nonzero(self) -> int:
        """Uniform draw from [1, p)."""
        while True:
            v = self.next_element()
            if v:
                return v

    def next_vector(self, n: int) -> list[int]:
        """n uniform field elements."""
        return [self.next_element() for _ in range(n)]

    def next_bytes(self, n: int) -> bytes:
        """Raw keystream bytes (for non-field randomness)."""
        return self._stream.read(n)

    def next_below(self, bound: int) -> int:
        """Uniform draw from [0, bound); used for exponent sampling."""
        nbytes = (bound.bit_length() + 15) // 8
        space = 1 << (nbytes * 8)
        limit = space - (space % bound)
        while True:
            raw = int.from_bytes(self._stream.read(nbytes), "little")
            if raw < limit:
                return raw % bound


def _derive_key(seed: bytes | str | int, domain: str) -> bytes:
    """32-byte ChaCha key from an arbitrary seed plus a domain label.

    Distinct domains ("linearity", "tau", "alpha", ...) give independent
    streams from one protocol seed, so query schedules cannot collide.
    """
    if isinstance(seed, int):
        seed = seed.to_bytes((seed.bit_length() + 7) // 8 or 1, "little")
    elif isinstance(seed, str):
        seed = seed.encode()
    return hashlib.sha256(seed + b"\x00" + domain.encode()).digest()
