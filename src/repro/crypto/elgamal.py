"""ElGamal encryption with messages in the exponent.

Ginger's linear commitment (§2.2) needs additively homomorphic
encryption of field elements: the verifier sends Enc(r) componentwise
and the prover returns Enc(π(r)) computed as ∏ Enc(r_i)^{u_i}.  We
instantiate it the way the Pepper/Ginger line does: ElGamal over a
prime-order subgroup of Z_P^*, with the message m carried as g^m.

The subgroup order equals the PCP field modulus p (DSA-style
parameters, see ``groups.py``), so homomorphic exponent arithmetic *is*
field arithmetic and the verifier's consistency check

    g^(π(t) - Σ αᵢ·π(qᵢ))  ==  Dec(e)  ( = g^(π(r)) )

is an equality of field-indexed powers.  The verifier never needs the
discrete log of the decryption — only this equality — which is why
message-in-exponent ElGamal suffices (fully homomorphic encryption is
not required; §2.2 footnote 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import telemetry
from .groups import SchnorrGroup
from .prg import FieldPRG


@dataclass(frozen=True)
class ElGamalCiphertext:
    """(g^k, g^m · h^k) — both components in the ambient group mod P."""

    c1: int
    c2: int


@dataclass(frozen=True)
class ElGamalPublicKey:
    group: SchnorrGroup
    h: int  # g^x

    def encrypt(self, message: int, prg: FieldPRG) -> ElGamalCiphertext:
        """Encrypt a field element (carried in the exponent)."""
        if telemetry.enabled():
            telemetry.count("crypto.encryptions")
            telemetry.count("crypto.exponentiations", 3)
        group = self.group
        k = prg.next_below(group.order)
        c1 = pow(group.generator, k, group.modulus)
        c2 = (
            pow(group.generator, message % group.order, group.modulus)
            * pow(self.h, k, group.modulus)
            % group.modulus
        )
        return ElGamalCiphertext(c1, c2)

    def encrypt_vector(self, messages: list[int], prg: FieldPRG) -> list[ElGamalCiphertext]:
        """Componentwise encryption (the commit request's Enc(r))."""
        return [self.encrypt(m, prg) for m in messages]


@dataclass(frozen=True)
class ElGamalKeypair:
    public: ElGamalPublicKey
    secret: int

    @classmethod
    def generate(cls, group: SchnorrGroup, prg: FieldPRG) -> "ElGamalKeypair":
        x = prg.next_below(group.order - 1) + 1
        h = pow(group.generator, x, group.modulus)
        return cls(ElGamalPublicKey(group, h), x)

    def decrypt_to_group(self, ct: ElGamalCiphertext) -> int:
        """Recover g^m (not m itself — the exponent stays hidden)."""
        if telemetry.enabled():
            telemetry.count("crypto.decryptions")
            telemetry.count("crypto.exponentiations")
        P = self.public.group.modulus
        return ct.c2 * pow(ct.c1, P - 1 - self.secret, P) % P


def ciphertext_mul(group: SchnorrGroup, a: ElGamalCiphertext, b: ElGamalCiphertext) -> ElGamalCiphertext:
    """Enc(m1) ⊙ Enc(m2) = Enc(m1 + m2)."""
    P = group.modulus
    return ElGamalCiphertext(a.c1 * b.c1 % P, a.c2 * b.c2 % P)


def ciphertext_pow(group: SchnorrGroup, ct: ElGamalCiphertext, scalar: int) -> ElGamalCiphertext:
    """Enc(m)^s = Enc(s · m)."""
    if telemetry.enabled():
        telemetry.count("crypto.exponentiations", 2)
    P = group.modulus
    s = scalar % group.order
    return ElGamalCiphertext(pow(ct.c1, s, P), pow(ct.c2, s, P))


def homomorphic_inner_product(
    group: SchnorrGroup, ciphertexts: list[ElGamalCiphertext], weights: list[int]
) -> ElGamalCiphertext:
    """∏ Enc(r_i)^{u_i} = Enc(<r, u>) — the prover's commitment step.

    Each term is the cost-model parameter ``h`` ("ciphertext add plus
    multiply", §5.1); the prover pays one ``h`` per entry of the proof
    vector (Figure 3, "Issue responses").  Zero weights are skipped,
    matching what an optimized prover does for sparse vectors.
    """
    if len(ciphertexts) != len(weights):
        raise ValueError("ciphertext/weight length mismatch")
    P = group.modulus
    acc1, acc2 = 1, 1
    terms = 0
    for ct, w in zip(ciphertexts, weights):
        if w == 0:
            continue
        terms += 1
        s = w % group.order
        acc1 = acc1 * pow(ct.c1, s, P) % P
        acc2 = acc2 * pow(ct.c2, s, P) % P
    if telemetry.enabled():
        telemetry.count("crypto.ciphertext_ops", terms)
        telemetry.count("crypto.exponentiations", 2 * terms)
    return ElGamalCiphertext(acc1, acc2)
