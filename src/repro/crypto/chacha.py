"""ChaCha20 stream cipher (pure Python).

The paper uses ChaCha as its pseudorandom generator (§5.1, [13]): the
verifier derives its PCP queries pseudorandomly from a short seed, and
a copy of the seed is what travels to the prover instead of full query
vectors (§A.1, "network costs").  This implementation follows RFC 8439
(20 rounds, 32-byte key, 12-byte nonce, 32-bit block counter).
"""

from __future__ import annotations

import struct

_MASK = 0xFFFFFFFF


def _rotl32(v: int, c: int) -> int:
    return ((v << c) & _MASK) | (v >> (32 - c))


def _quarter_round(state: list[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK
    state[b] = _rotl32(state[b] ^ state[c], 7)


_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte ChaCha20 keystream block (RFC 8439 §2.3)."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    state = list(_CONSTANTS)
    state += list(struct.unpack("<8I", key))
    state.append(counter & _MASK)
    state += list(struct.unpack("<3I", nonce))
    working = list(state)
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    out = [(w + s) & _MASK for w, s in zip(working, state)]
    return struct.pack("<16I", *out)


class ChaChaStream:
    """Incremental keystream reader over successive ChaCha20 blocks."""

    def __init__(self, key: bytes, nonce: bytes = b"\x00" * 12, counter: int = 0):
        self._key = key
        self._nonce = nonce
        self._counter = counter
        self._buffer = b""

    def read(self, n: int) -> bytes:
        """Next ``n`` keystream bytes (buffered across blocks)."""
        chunks = [self._buffer] if self._buffer else []
        have = len(self._buffer)
        while have < n:
            block = chacha20_block(self._key, self._counter, self._nonce)
            self._counter = (self._counter + 1) & _MASK
            chunks.append(block)
            have += len(block)
        data = b"".join(chunks)
        self._buffer = data[n:]
        return data[:n]


def chacha20_encrypt(key: bytes, nonce: bytes, plaintext: bytes, counter: int = 1) -> bytes:
    """XOR a message with the keystream (encryption == decryption)."""
    stream = ChaChaStream(key, nonce, counter)
    ks = stream.read(len(plaintext))
    return bytes(a ^ b for a, b in zip(plaintext, ks))
