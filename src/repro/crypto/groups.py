"""Prime-order groups for the ElGamal linear commitment.

Each group is a subgroup of Z_P^* whose order is *exactly* one of the
PCP field moduli (DSA-style parameters: P = k·p + 1, generator of the
order-p subgroup).  This alignment is what makes the commitment's
consistency check an honest field identity: ElGamal exponents reduce
mod the group order, and the group order is the field modulus.

The paper uses ElGamal with 1024-bit keys (§5.1); the 512-bit groups
exist so the test suite and small benchmarks don't spend their time in
modular exponentiation.  All parameters below were generated with a
Miller-Rabin search and are verified by ``tests/crypto/test_groups.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..field import GOLDILOCKS, P128, P220, PrimeField


@dataclass(frozen=True)
class SchnorrGroup:
    """Subgroup of Z_modulus^* with prime ``order`` and ``generator``."""

    name: str
    modulus: int
    order: int
    generator: int

    @property
    def bits(self) -> int:
        """Bit length of the ambient modulus (the \"key size\")."""
        return self.modulus.bit_length()

    def contains(self, x: int) -> bool:
        """Membership test for the order-q subgroup."""
        return 0 < x < self.modulus and pow(x, self.order, self.modulus) == 1

    def encode(self, m: int) -> int:
        """g^m — the exponent embedding used by the commitment check."""
        return pow(self.generator, m % self.order, self.modulus)


#: 512-bit group of order GOLDILOCKS (test configurations).
GROUP_GOLDILOCKS_512 = SchnorrGroup(
    name="goldilocks-512",
    modulus=0xDF53C2DB48663AD9452551A2E72F0438709E514F4229DE4D0D4252FA0D092CE299D4937F4F2ADB1E11E4D4D81188C2A29D5C07F1016190DDA06AE95C27E610E3,
    order=GOLDILOCKS.modulus,
    generator=0x693D6A72083059121D26C638B1F3F9447F0BCEF0D26F86A846A0CD635569BBC82D49658063821631BA5E5863B08C6C743D8BDD72EC5EC2EBBC94C0B89F83D89,
)

#: 512-bit group of order P128 (fast benchmarks over the paper's field).
GROUP_P128_512 = SchnorrGroup(
    name="p128-512",
    modulus=0xD64B95283532FC1F5369A40BE14422813988AF735E9626E4187B6D177BAC1FE13D3603B23515062AA56B6F803A6ADB6CC4FF43220963A9DAF96FC4DFC96CD485,
    order=P128.modulus,
    generator=0x91162C4BB014BB17B214494808305F55F4492825B176C5D67033F7708FF817EC731E3EAFE8F4A7F0035640E2DA101472DC339A404E460B62A85869596B04F68E,
)

#: 1024-bit group of order P128 — the paper's configuration (§5.1).
GROUP_P128_1024 = SchnorrGroup(
    name="p128-1024",
    modulus=0xAEA4446C388B4836A9D34774EA3DD6756BFEE45956C50D2E67E8FA847F90FF4208382EB4CBA99AE60FFF14438B6F96DE7C010C789ECF963EB83ED5B950CD1E01F133C0285452EF35704F3E4558F78DD870BB4FEAE05C6844B20F6335F326308782F8A0624CB2F3A98127FFC0335FB6FFEC541AC3C877C8663C547C929A9753AD,
    order=P128.modulus,
    generator=0x6FF84C2E7EE2993392DAEC69ED8261F9E84BF0A9772E6E19D41453B1B0ED1280CCE4F41FA72DD75F7E716C10E207940C820B75DD78A318FB4197B08AD6C134BFB841B72F0F08048322C94BABABE2A8845506F1BDBA4AACFF11BB1799BAA65018184B703EC6DB351233C376928A3BE7081449FAA27D667172A840F2E292C6EF1B,
)

#: 1024-bit group of order P220 (rational-number benchmark configuration).
GROUP_P220_1024 = SchnorrGroup(
    name="p220-1024",
    modulus=0xBB49BF863D59CED2C20DECA8DF2187E7C09C7B1AEE427DCD3CE8696DCE94BF01CC1C0962EDF3CCAD01D32ED4A1EA7092D1D62547759BF72187A5F687D1F4687E11200D8152FE9B415561A2F9FF74121D9499D98C349589D51463C382F074A3EAC96634A2B155E5847DE9609D226C6E22D8C33AF5702FC141F0253A3225380F79,
    order=P220.modulus,
    generator=0x31149D24E11AC3613CD1248C5AB134A09581A07D2CA752757C6E3C5302D11481D528FF8605F9664747738D6D594BDD3A51030205ADCE0FBF9DC9798BE196E92F8FF137C83A347F36B36D6C2B9CB48678DCCBA779388FEDD525FB4EAAD65DF3655BE25D681D8E781DB89F856448F24367C1BB44487A8056CD265D9D1F8590DD1A,
)

_GROUPS = {
    g.name: g
    for g in (GROUP_GOLDILOCKS_512, GROUP_P128_512, GROUP_P128_1024, GROUP_P220_1024)
}

#: preferred group per field modulus, smallest first (tests) then paper-scale
_BY_ORDER = {
    GOLDILOCKS.modulus: [GROUP_GOLDILOCKS_512],
    P128.modulus: [GROUP_P128_512, GROUP_P128_1024],
    P220.modulus: [GROUP_P220_1024],
}


def group_for_field(field: PrimeField, *, paper_scale: bool = False) -> SchnorrGroup:
    """Commitment group whose order matches ``field``'s modulus.

    ``paper_scale=True`` selects the 1024-bit modulus the paper used;
    the default picks the smallest available group for speed.
    """
    options = _BY_ORDER.get(field.p)
    if not options:
        raise KeyError(
            f"no commitment group generated for field modulus {field.p:#x}; "
            "add one to repro.crypto.groups"
        )
    return options[-1] if paper_scale else options[0]


def named_group(name: str) -> SchnorrGroup:
    """Look up a hardcoded group by name."""
    try:
        return _GROUPS[name]
    except KeyError:
        raise KeyError(f"unknown group {name!r}; known: {sorted(_GROUPS)}") from None
