"""Cryptographic substrate: ChaCha PRG, ElGamal, linear commitment."""

from .chacha import ChaChaStream, chacha20_block, chacha20_encrypt
from .commitment import (
    CommitmentOpCounts,
    CommitmentProver,
    CommitmentVerifier,
    CommitRequest,
    DecommitChallenge,
    DecommitResponse,
    run_commitment_round,
)
from .elgamal import (
    ElGamalCiphertext,
    ElGamalKeypair,
    ElGamalPublicKey,
    ciphertext_mul,
    ciphertext_pow,
    homomorphic_inner_product,
)
from .groups import (
    GROUP_GOLDILOCKS_512,
    GROUP_P128_512,
    GROUP_P128_1024,
    GROUP_P220_1024,
    SchnorrGroup,
    group_for_field,
    named_group,
)
from .prg import FieldPRG

__all__ = [
    "ChaChaStream",
    "CommitRequest",
    "CommitmentOpCounts",
    "CommitmentProver",
    "CommitmentVerifier",
    "DecommitChallenge",
    "DecommitResponse",
    "ElGamalCiphertext",
    "ElGamalKeypair",
    "ElGamalPublicKey",
    "FieldPRG",
    "GROUP_GOLDILOCKS_512",
    "GROUP_P128_1024",
    "GROUP_P128_512",
    "GROUP_P220_1024",
    "SchnorrGroup",
    "chacha20_block",
    "chacha20_encrypt",
    "ciphertext_mul",
    "ciphertext_pow",
    "group_for_field",
    "homomorphic_inner_product",
    "named_group",
    "run_commitment_round",
]
