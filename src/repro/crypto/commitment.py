"""Linear commitment: Commit + Multidecommit (Pepper/Ginger primitive).

This is the machinery that turns a *linear PCP oracle* into a two-party
argument (§2.2, "Linear commitment"):

1. **Commit.**  V draws a secret random vector r, sends Enc(r)
   componentwise; P replies with e = Enc(π(r)) computed homomorphically.
   P has now bound itself to one linear function π (it cannot later
   answer as a different function without guessing r).
2. **Multidecommit.**  V sends the PCP queries q_1..q_μ in the clear
   plus a consistency query t = r + Σ αᵢ·qᵢ for secret random αᵢ.
   P answers every query by inner product with its proof vector.
   V decrypts e to g^(π(r)) and accepts the answers only if

       g^(π(t) − Σ αᵢ·π(qᵢ)) == g^(π(r)).

The soundness error this adds on top of the PCP is bounded by
9·μ·|F|^(−1/3) per [53, Apdx A.2]; ``repro.pcp.soundness`` carries the
numbers.

Both sides count their expensive operations (`e`, `d`, `h` of the §5.1
microbenchmark table) so tests can validate the Figure-3 cost model
against actual op counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Sequence

from .. import telemetry
from ..field import PrimeField
from .elgamal import (
    ElGamalCiphertext,
    ElGamalKeypair,
    homomorphic_inner_product,
)
from .groups import SchnorrGroup
from .prg import FieldPRG


@dataclass
class CommitmentOpCounts:
    """Operation tally mapped to the paper's microbenchmark parameters."""

    encryptions: int = 0       # e
    decryptions: int = 0       # d
    ciphertext_ops: int = 0    # h (one per nonzero proof-vector entry)
    field_muls: int = 0        # f (query-answer inner products)

    def merge(self, other: "CommitmentOpCounts") -> None:
        """Accumulate another tally into this one."""
        self.encryptions += other.encryptions
        self.decryptions += other.decryptions
        self.ciphertext_ops += other.ciphertext_ops
        self.field_muls += other.field_muls


@dataclass
class CommitRequest:
    """V → P: componentwise encryption of the secret vector r."""

    ciphertexts: list[ElGamalCiphertext]


@dataclass
class DecommitChallenge:
    """V → P: the PCP queries plus the consistency query t (last)."""

    queries: list[list[int]]


@dataclass
class DecommitResponse:
    """P → V: π applied to every challenge query; ``answers[-1]`` is π(t)."""

    answers: list[int]


class CommitmentVerifier:
    """Verifier side of Commit + Multidecommit for one proof oracle."""

    def __init__(
        self,
        field: PrimeField,
        group: SchnorrGroup,
        vector_length: int,
        prg: FieldPRG,
    ):
        if group.order != field.p:
            raise ValueError(
                f"commitment group order must equal the field modulus "
                f"(group {group.name} has order {group.order:#x}, field is {field.p:#x})"
            )
        self.field = field
        self.group = group
        self.n = vector_length
        self._prg = prg
        self.counts = CommitmentOpCounts()
        self._keypair = ElGamalKeypair.generate(group, prg)
        self._r: list[int] | None = None
        self._alphas: list[int] | None = None

    # -- phase 1: commit -------------------------------------------------------
    #
    # In the batched protocol (§2.2) the commit request and the
    # decommit challenge are generated ONCE per batch; every instance
    # produces its own commitment e_i = Enc(π_i(r)) and its own answer
    # set, verified individually.  This is what lets Figure 3 divide
    # the (e + 2c + ...)·|u| query-construction cost by β.

    def commit_request(self) -> CommitRequest:
        """Draw the secret r and encrypt it componentwise (once per batch)."""
        self._r = [self._prg.next_element() for _ in range(self.n)]
        cts = self._keypair.public.encrypt_vector(self._r, self._prg)
        self.counts.encryptions += self.n
        return CommitRequest(cts)

    # -- phase 2: decommit --------------------------------------------------------

    def decommit_challenge(self, queries: Sequence[Sequence[int]]) -> DecommitChallenge:
        """Append the consistency query t = r + Σ αᵢ·qᵢ to the PCP queries."""
        if self._r is None:
            raise RuntimeError("commit_request must run before decommit")
        self._alphas = [self._prg.next_element() for _ in range(len(queries))]
        t = list(self._r)
        for alpha, q in zip(self._alphas, queries):
            if len(q) != self.n:
                raise ValueError(f"query length {len(q)} != vector length {self.n}")
            t = self.field.vec_addmul(t, alpha, q)
        self.counts.field_muls += sum(
            1 for q in queries for qi in q if qi
        )
        return DecommitChallenge([list(q) for q in queries] + [t])

    def verify(self, commitment: ElGamalCiphertext, response: DecommitResponse) -> bool:
        """Consistency test in the exponent; True iff the answers bind to
        the function committed in ``commitment``.  Called once per
        batch instance."""
        if self._alphas is None:
            raise RuntimeError("decommit_challenge must run before verify")
        *answers, t_answer = response.answers
        if len(answers) != len(self._alphas):
            raise ValueError("answer count does not match query count")
        p = self.field.p
        expected_exp = t_answer
        for alpha, a in zip(self._alphas, answers):
            expected_exp = (expected_exp - alpha * a) % p
        decrypted = self._keypair.decrypt_to_group(commitment)
        self.counts.decryptions += 1
        return self.group.encode(expected_exp) == decrypted

    @property
    def pcp_answers_of(self):
        """Split a response into PCP answers (dropping the consistency answer)."""
        def split(response: DecommitResponse) -> list[int]:
            return response.answers[:-1]
        return split


class CommitmentProver:
    """Prover side: holds the proof vector u and answers linearly.

    A *correct* prover is exactly this class.  Cheating provers in the
    test suite subclass it and misbehave in each of the ways §2.2
    enumerates (non-linear functions, wrong-form linear functions,
    unsatisfying assignments).
    """

    def __init__(self, field: PrimeField, group: SchnorrGroup, proof_vector: Sequence[int]):
        self.field = field
        self.group = group
        self.u = list(proof_vector)
        self.counts = CommitmentOpCounts()

    def commit(self, request: CommitRequest) -> ElGamalCiphertext:
        """e = Enc(π(r)), computed homomorphically — binds this prover to u."""
        if len(request.ciphertexts) != len(self.u):
            raise ValueError(
                f"commit request length {len(request.ciphertexts)} != proof vector "
                f"length {len(self.u)}"
            )
        self.counts.ciphertext_ops += sum(1 for w in self.u if w)
        telemetry.count("crypto.commitments")
        return homomorphic_inner_product(self.group, request.ciphertexts, self.u)

    def answer(self, challenge: DecommitChallenge) -> DecommitResponse:
        """π applied to every challenge query by inner product."""
        answers = []
        for q in challenge.queries:
            answers.append(self.field.inner_product(q, self.u))
            self.counts.field_muls += sum(1 for qi in q if qi)
        telemetry.count("crypto.decommit_answers", len(answers))
        return DecommitResponse(answers)


def run_commitment_round(
    verifier: CommitmentVerifier,
    prover: CommitmentProver,
    queries: Sequence[Sequence[int]],
) -> tuple[bool, list[int]]:
    """Drive one full Commit + Multidecommit exchange.

    Returns (consistency_ok, pcp_answers).  Callers still have to run
    the PCP checks on the answers; this function only establishes that
    the answers came from *some* fixed linear function.
    """
    request = verifier.commit_request()
    commitment = prover.commit(request)
    challenge = verifier.decommit_challenge(queries)
    response = prover.answer(challenge)
    ok = verifier.verify(commitment, response)
    return ok, response.answers[:-1]
