"""Command-line interface: compile, prove/verify, trace, microbenchmark.

Examples::

    python -m repro compile program.zr --field p128
    python -m repro prove program.zr --inputs 1,2,3 --inputs 4,5,6
    python -m repro trace program.zr --inputs 1,2,3 --out run.trace.jsonl
    python -m repro trace --app matmul --size m=2
    python -m repro trace program.zr --inputs 1,2,3 --remote 127.0.0.1:9410 --json
    python -m repro serve program.zr --max-sessions 16 --metrics-port 9464
    python -m repro top 127.0.0.1:9410 --interval 2
    python -m repro bench-check baseline/BENCH_kernels.json benchmarks/out/BENCH_kernels.json --max-regress 15%
    python -m repro microbench --field goldilocks

``compile`` prints the encoding statistics (the Figure-9 quantities)
and the hybrid chooser's verdict; ``prove`` runs the full batched
argument on the given input vectors and reports outputs, acceptance,
and the prover's Figure-5 cost decomposition; ``trace`` runs the same
argument (plus a loopback network session) under full telemetry and
writes a JSONL trace — see docs/OBSERVABILITY.md for how to read it.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from . import telemetry
from .argument import (
    ArgumentConfig,
    CheckpointError,
    Deadlines,
    GatewayServer,
    ProgramRegistry,
    ProtocolViolation,
    ProverServer,
    ZaatarArgument,
    choose_encoding,
    fetch_stats,
    program_hash,
    run_parallel_batch,
    verify_remote,
)
from .compiler import compile_source
from .costmodel import run_microbench
from .deploy import LINK_PROFILES
from .field import NAMED_FIELDS, PrimeField, counting_field
from .pcp import PAPER_PARAMS, SoundnessParams


def _field(name: str) -> PrimeField:
    return PrimeField.named(name)


def _load_program(path: str, field: PrimeField, bit_width: int):
    source = Path(path).read_text()
    return compile_source(field, source, name=Path(path).stem, bit_width=bit_width)


def cmd_compile(args: argparse.Namespace) -> int:
    """``repro compile``: print encoding stats and the hybrid verdict."""
    field = _field(args.field)
    program = _load_program(args.program, field, args.bit_width)
    stats = program.stats()
    print(f"program          : {program.name}")
    print(f"field            : {field.name} ({field.bits} bits)")
    print(f"inputs / outputs : {program.num_inputs} / {program.num_outputs}")
    print(f"|Z_ginger|       : {stats.z_ginger}")
    print(f"|C_ginger|       : {stats.c_ginger}")
    print(f"K / K2           : {stats.k_terms} / {stats.k2_terms}  (K2* = {stats.k2_star})")
    print(f"|Z_zaatar|       : {stats.z_zaatar}")
    print(f"|C_zaatar|       : {stats.c_zaatar}")
    print(f"|u_ginger|       : {stats.u_ginger}")
    print(f"|u_zaatar|       : {stats.u_zaatar}  ({stats.proof_shrink_factor:.1f}x shorter)")
    decision = choose_encoding(program)
    print(f"hybrid chooser   : {decision.system} (advantage {decision.advantage:.1f}x)")
    return 0


def _parse_batch(specs: list[str]) -> list[list[int]] | None:
    """Parse repeated ``--inputs`` vectors; None on malformed input."""
    batch = []
    for spec in specs:
        try:
            batch.append([int(v) for v in spec.replace(" ", "").split(",") if v])
        except ValueError:
            print(f"error: bad input vector {spec!r}", file=sys.stderr)
            return None
    return batch


def cmd_prove(args: argparse.Namespace) -> int:
    """``repro prove``: run the batched argument on input vectors.

    With ``--workers`` > 1 or ``--checkpoint`` the batch runs on the
    resilient engine (docs/RESILIENCE.md): failed instances become
    structured outcomes instead of aborting the batch, and a killed
    checkpointed run resumes without re-proving finished instances.
    """
    field = _field(args.field)
    program = _load_program(args.program, field, args.bit_width)
    if not args.inputs:
        print("error: provide at least one --inputs vector", file=sys.stderr)
        return 2
    batch = _parse_batch(args.inputs)
    if batch is None:
        return 2
    params = (
        PAPER_PARAMS
        if args.paper_soundness
        else SoundnessParams(rho_lin=args.rho_lin, rho=args.rho)
    )
    config = ArgumentConfig(params=params, use_commitment=not args.no_commitment)
    argument = ZaatarArgument(program, config)
    resumed = retries = worker_deaths = 0
    if args.workers > 1 or args.checkpoint:
        try:
            engine_result = run_parallel_batch(
                argument, batch, num_workers=args.workers, checkpoint=args.checkpoint
            )
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = engine_result.result
        resumed = engine_result.resumed
        retries = engine_result.retries
        worker_deaths = engine_result.worker_deaths
    else:
        result = argument.run_batch(batch)
    for inputs, instance in zip(batch, result.instances):
        if not instance.ok:
            print(
                f"x={inputs} -> FAILED[{instance.error_code}] "
                f"after {instance.attempts} attempt"
                f"{'s' if instance.attempts > 1 else ''}: {instance.error_message}"
            )
            continue
        status = "ACCEPTED" if instance.accepted else "REJECTED"
        print(f"x={inputs} -> y={instance.output_values}  [{status}]")
    mean = result.stats.mean_prover()
    print(
        f"prover per instance: solve={mean.solve_constraints:.3f}s "
        f"u={mean.construct_u:.3f}s crypto={mean.crypto_ops:.3f}s "
        f"answer={mean.answer_queries:.3f}s e2e={mean.e2e:.3f}s"
    )
    v = result.stats.verifier
    print(f"verifier: setup={v.query_setup:.3f}s per-instance={v.per_instance / max(len(batch), 1):.3f}s")
    print(f"failures: {result.failures}")
    if resumed or retries or worker_deaths:
        print(
            f"engine: {resumed} resumed from checkpoint, {retries} retries, "
            f"{worker_deaths} worker deaths"
        )
    return 0 if result.all_accepted else 1


def _trace_app_registry() -> dict:
    """Benchmark apps addressable from ``repro trace/check/deploy --app``."""
    from .apps import MATMUL, SCENARIO_APPS

    registry = dict(SCENARIO_APPS)
    registry["matmul"] = MATMUL
    return registry


def _parse_sizes(specs: list[str]) -> dict | None:
    """Parse repeated ``--size name=int``; None on malformed input."""
    sizes: dict[str, int] = {}
    for spec in specs:
        key, _, value = spec.partition("=")
        try:
            sizes[key] = int(value)
        except ValueError:
            print(f"error: bad --size {spec!r} (want name=int)", file=sys.stderr)
            return None
    return sizes


def _parse_address(spec: str) -> tuple[str, int] | None:
    """``HOST:PORT`` (or just ``PORT`` for localhost); None if malformed."""
    host, _, port_text = spec.rpartition(":")
    try:
        return (host or "127.0.0.1", int(port_text))
    except ValueError:
        print(f"error: bad address {spec!r} (want HOST:PORT)", file=sys.stderr)
        return None


def cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: run the argument under telemetry, dump a trace.

    The run covers the local batched argument (Figure-5 prover phases,
    verifier setup/per-instance spans, field/crypto/poly counters) and,
    unless ``--no-net``, a loopback prover-server session so bytes on
    the wire are measured too (``net.*`` counters).  With ``--remote
    HOST:PORT`` the local run is skipped and the batch is verified
    against a running prover server instead; the server ships its
    session spans back in the answers frame, so the rendered tree is
    one stitched distributed trace.  ``--json`` emits the whole result
    (spans, counter totals, verdict) as a JSON document on stdout for
    scripted consumers.
    """
    # the counting field is the opt-in field-op instrumentation: the
    # program is compiled against it, so every solve/answer counts
    field = counting_field(_field(args.field))
    if args.app:
        registry = _trace_app_registry()
        if args.app not in registry:
            print(
                f"error: unknown app {args.app!r} "
                f"(choose from {', '.join(sorted(registry))})",
                file=sys.stderr,
            )
            return 2
        app = registry[args.app]
        sizes = _parse_sizes(args.size)
        if sizes is None:
            return 2
        program = app.compile(field, sizes)
        rng = random.Random(args.seed)
        batch = [app.generate_inputs(rng, sizes) for _ in range(args.batch)]
    else:
        if not args.program:
            print("error: provide a program path or --app", file=sys.stderr)
            return 2
        program = _load_program(args.program, field, args.bit_width)
        if not args.inputs:
            print("error: provide at least one --inputs vector", file=sys.stderr)
            return 2
        batch = _parse_batch(args.inputs)
        if batch is None:
            return 2

    remote_addr = None
    if args.remote:
        remote_addr = _parse_address(args.remote)
        if remote_addr is None:
            return 2

    params = SoundnessParams(rho_lin=args.rho_lin, rho=args.rho)
    config = ArgumentConfig(params=params)
    tracer = telemetry.enable()
    try:
        with telemetry.span(
            "trace", program=program.name, field=field.name, batch_size=len(batch)
        ):
            if remote_addr is not None:
                try:
                    net_result = verify_remote(program, batch, remote_addr, config)
                except (ProtocolViolation, OSError) as exc:
                    print(
                        f"error: remote verification against "
                        f"{remote_addr[0]}:{remote_addr[1]} failed: {exc}",
                        file=sys.stderr,
                    )
                    return 1
                accepted = net_result.all_accepted
            else:
                argument = ZaatarArgument(program, config)
                result = argument.run_batch(batch)
                accepted = result.all_accepted
                if args.net:
                    with telemetry.span("wire.loopback"):
                        with ProverServer(program, config) as server:
                            net_result = verify_remote(
                                program, batch, server.address, config
                            )
                        accepted = accepted and net_result.all_accepted
    finally:
        telemetry.disable()

    if args.out:
        out = Path(args.out)
    else:
        # app-compiled program names embed a sizes dict — keep the
        # default filename shell-friendly
        stem = "".join(c if c.isalnum() or c in "-_." else "_" for c in program.name)
        out = Path(f"{stem.strip('_')}.trace.jsonl")
    telemetry.write_jsonl(tracer, out)
    totals = tracer.total_counters()

    if args.json:
        doc = {
            "trace_version": telemetry.TRACE_VERSION,
            "trace_id": tracer.trace_id,
            "program": program.name,
            "field": field.name,
            "backend": field.backend.name,
            "batch_size": len(batch),
            "remote": (
                f"{remote_addr[0]}:{remote_addr[1]}" if remote_addr else None
            ),
            "accepted": accepted,
            "trace_file": str(out),
            "spans": [s.to_record() for s in tracer.spans],
            "counter_totals": totals,
        }
        print(json.dumps(doc, indent=2))
        return 0 if accepted else 1

    print(telemetry.render_tree(tracer))
    print("\ncounter totals:")
    print(telemetry.render_counter_totals(tracer))
    plan_hits = int(totals.get("poly.plan_hits", 0))
    plan_misses = int(totals.get("poly.plan_misses", 0))
    if plan_hits or plan_misses:
        reuse = plan_hits / (plan_hits + plan_misses)
        print(
            f"\nkernel plan cache: {plan_hits} hits / {plan_misses} misses "
            f"({reuse:.0%} reuse; see docs/PERFORMANCE.md)"
        )
    backend_counts = sorted(
        (k, int(v)) for k, v in totals.items() if k.startswith("backend.")
    )
    kernel_stats = (
        ", ".join(f"{k}={v}" for k, v in backend_counts)
        if backend_counts
        else "no vector-kernel calls"
    )
    print(f"field backend: {field.backend.name} ({kernel_stats})")
    verdict = "ACCEPTED" if accepted else "REJECTED"
    print(f"\nbatch of {len(batch)}: {verdict}")
    print(f"trace written to {out} ({len(tracer.spans)} spans)")
    return 0 if accepted else 1


def cmd_check(args: argparse.Namespace) -> int:
    """``repro check``: differentially test compiled constraint systems.

    Runs the semantics oracle (reference execution over random +
    boundary + adversarial inputs), the unsat-witness prober (seeded
    single-wire mutations must be rejected, with the firing constraint
    localized), and — unless ``--no-mutations`` — the compiler-mutation
    harness, which injects seeded faults into the compiled system and
    requires a 100% kill rate.  ``--app NAME`` checks a built-in
    scenario (``--app all`` sweeps the whole library); a program path
    checks a ``.zr`` file.  The JSON report is byte-deterministic for a
    fixed seed.  Exit 0 iff every checked program passed.
    """
    from .compiler.check import check_app, check_program

    field = _field(args.field)
    sizes = _parse_sizes(args.size)
    if sizes is None:
        return 2

    jobs: list[tuple[str, object]] = []  # (label, callable)
    if args.app:
        registry = _trace_app_registry()
        if args.app == "all":
            apps = {app.name: app for app in registry.values()}
            jobs = [(name, apps[name]) for name in sorted(apps)]
        elif args.app in registry:
            jobs = [(registry[args.app].name, registry[args.app])]
        else:
            print(
                f"error: unknown app {args.app!r} "
                f"(choose from all, {', '.join(sorted(registry))})",
                file=sys.stderr,
            )
            return 2
    else:
        if not args.program:
            print("error: provide a program path or --app", file=sys.stderr)
            return 2
        jobs = [(Path(args.program).stem, None)]

    reports = {}
    tracer = telemetry.enable()
    try:
        for label, app in jobs:
            if app is None:
                program = _load_program(args.program, field, args.bit_width)
                report = check_program(
                    program,
                    seed=args.seed,
                    num_random=args.random,
                    input_bits=args.input_bits,
                    mutations=args.mutations,
                    mutations_per_kind=args.mutations_per_kind,
                )
            else:
                report = check_app(
                    app,
                    field,
                    sizes or None,
                    seed=args.seed,
                    num_random=args.random,
                    mutations=args.mutations,
                    mutations_per_kind=args.mutations_per_kind,
                )
            reports[label] = report
    finally:
        telemetry.disable()
    totals = tracer.total_counters()

    all_passed = all(r.passed for r in reports.values())
    document = {
        "check_version": 1,
        "field": field.name,
        "seed": args.seed,
        "passed": all_passed,
        "programs": {label: r.to_document() for label, r in reports.items()},
        "counter_totals": {
            k: int(v) for k, v in sorted(totals.items()) if k.startswith("check.")
        },
    }
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).parent.mkdir(parents=True, exist_ok=True)
        Path(args.out).write_text(text)
    if args.json:
        print(text, end="")
        return 0 if all_passed else 1

    for label, report in reports.items():
        o, p, m = report.oracle, report.probes, report.mutations
        line = (
            f"{label}: {'PASS' if report.passed else 'FAIL'}  "
            f"oracle {o['ok']}/{o['cases']} ok"
        )
        if o.get("skipped_domain"):
            line += f" ({o['skipped_domain']} out-of-domain skipped)"
        if p:
            line += (
                f"  probes {p['killed']}/{p['wires_probed']} killed"
                f" ({len(p['survivors'])} benign free wires)"
            )
        if m.get("ran"):
            line += f"  mutations {m['killed']}/{m['catalog']} killed"
        print(line)
        for failure in o.get("failures", []):
            print(f"  oracle failure: {failure}")
        if p and p.get("output_survivors"):
            print(f"  SOUNDNESS: free output wires {p['output_survivors']}")
        if m.get("ran"):
            for entry in m["results"]:
                if not entry["killed"]:
                    print(f"  SURVIVED: {entry['mutation']}")
    if args.out:
        print(f"report written to {args.out}")
    print(
        f"check: {'OK' if all_passed else 'FAILED'} "
        f"({sum(1 for r in reports.values() if r.passed)}/{len(reports)} programs, "
        f"{document['counter_totals'].get('check.inputs', 0)} oracle inputs, "
        f"{document['counter_totals'].get('check.mutations_killed', 0)} mutations killed)"
    )
    return 0 if all_passed else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run a prover server (or multi-tenant gateway).

    The default serves one compiled program through ``ProverServer``.
    With ``--registry`` (repeatable, more programs to host) and/or
    ``--shards`` (prover worker processes) it becomes a
    ``GatewayServer``: every listed program is registered and
    pre-warmed, sessions are dispatched by the ``hello`` frame's
    program hash, and admission control (``--accept-queue``,
    ``--per-program-sessions``) sheds overload with ``busy`` frames
    carrying retry hints.  Serves until interrupted (or for
    ``--duration`` seconds); ``--metrics-port`` additionally serves the
    live metrics registry over HTTP as a Prometheus-style plaintext
    page (``/json`` for the snapshot form that ``repro top`` renders).
    """
    field = _field(args.field)
    program = _load_program(args.program, field, args.bit_width)
    deadlines = Deadlines(read=args.read_timeout, session=args.session_budget)
    gateway_mode = bool(args.registry) or args.shards is not None
    if gateway_mode:
        registry = ProgramRegistry()
        registry.register(program, ArgumentConfig())
        for path in args.registry:
            extra = _load_program(path, field, args.bit_width)
            registry.register(extra, ArgumentConfig())
        server = GatewayServer(
            registry,
            host=args.host,
            port=args.port,
            max_sessions=args.max_sessions,
            shards=args.shards or 0,
            accept_queue=args.accept_queue,
            per_program_sessions=args.per_program_sessions,
            deadlines=deadlines,
            accept_rate=args.accept_rate,
            resume_timeout=args.resume_timeout,
        )
        server.start()
        host, port = server.address
        print(
            f"gateway on {host}:{port} ({len(registry)} programs, "
            f"max {args.max_sessions} sessions + {args.accept_queue} queued, "
            f"{args.shards or 0} shard workers)"
        )
        for entry in registry:
            print(f"  {entry.name}  hash {entry.hash[:16]}…")
    else:
        server = ProverServer(
            program,
            ArgumentConfig(),
            host=args.host,
            port=args.port,
            max_sessions=args.max_sessions,
            deadlines=deadlines,
        )
        server.start()
        host, port = server.address
        print(
            f"serving {program.name} on {host}:{port} "
            f"(hash {program_hash(program)[:16]}…, max {args.max_sessions} sessions, "
            f"read deadline {args.read_timeout:g}s"
            + (f", session budget {args.session_budget:g}s)" if args.session_budget else ")")
        )
    exporter = None
    if args.metrics_port is not None:
        exporter = telemetry.start_http_exporter(
            server.metrics, host=args.host, port=args.metrics_port
        )
        mhost, mport = exporter.server_address[:2]
        print(f"metrics on http://{mhost}:{mport}/ (plaintext; /json for snapshot)")
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:  # pragma: no cover - interactive foreground loop
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover
        print("\nshutting down (draining in-flight sessions)...")
    finally:
        if exporter is not None:
            exporter.shutdown()
        server.close()
        stats = server.stats
        line = (
            f"sessions: {stats.get('sessions_ok', 0)} ok, "
            f"{stats.get('session_errors', 0)} failed, "
            f"{stats.get('sessions_rejected', 0)} rejected at capacity"
        )
        if stats.get("worker_deaths"):
            line += f", {stats['worker_deaths']} shard deaths"
        if stats.get("sessions_refused_shutdown"):
            line += f", {stats['sessions_refused_shutdown']} refused at shutdown"
        print(line)
    return 0


def _fmt_duration(seconds) -> str:
    if seconds is None:
        return "-"
    if seconds >= 1:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.1f}ms"


def _render_top(doc: dict) -> str:
    """One screenful of a prover server's stats snapshot."""
    server = doc.get("server") or {}
    metrics = doc.get("metrics") or {}
    info = metrics.get("info") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    hists = metrics.get("histograms") or {}
    address = server.get("address") or ["?", "?"]
    lines = [
        f"repro top — {server.get('program', '?')} "
        f"@ {address[0]}:{address[1]} "
        f"(hash {str(server.get('program_hash', ''))[:16]}…)",
        f"uptime {metrics.get('uptime_seconds', 0.0):.0f}s   "
        f"backend {info.get('backend', '?')}   field {info.get('field', '?')}   "
        f"capacity {server.get('max_sessions', '?')} sessions",
        "",
        "sessions   started {:.0f}   ok {:.0f}   errors {:.0f}   "
        "rejected {:.0f}   in-flight {:.0f}".format(
            counters.get("sessions_started", 0),
            counters.get("sessions_ok", 0),
            counters.get("session_errors", 0),
            counters.get("sessions_rejected", 0),
            gauges.get("sessions_in_flight", 0),
        ),
    ]
    for name, label in (
        ("session_latency_seconds", "latency"),
        ("session_queue_wait_seconds", "queue wait"),
    ):
        hist = hists.get(name)
        if hist:
            exact = "exact" if hist.get("exact") else "sampled"
            lines.append(
                f"{label:10s} n={hist['count']}  "
                f"p50={_fmt_duration(hist.get('p50'))}  "
                f"p90={_fmt_duration(hist.get('p90'))}  "
                f"p99={_fmt_duration(hist.get('p99'))}  "
                f"max={_fmt_duration(hist.get('max'))}  ({exact})"
            )
    batch_hist = hists.get("session_batch_size")
    if batch_hist:
        lines.append(
            f"batch size n={batch_hist['count']}  "
            f"p50={batch_hist.get('p50'):g}  max={batch_hist.get('max'):g}"
        )
    error_codes = sorted(
        (key.split(".", 1)[1], value)
        for key, value in counters.items()
        if key.startswith("session_errors.")
    )
    if error_codes:
        lines.append(
            "errors by code   "
            + "   ".join(f"{code}={value:.0f}" for code, value in error_codes)
        )
    workers = gauges.get("batch.workers_alive")
    if workers is not None:
        lines.append(f"workers alive {workers:.0f}")
    backend_counts = sorted(
        (key, value) for key, value in counters.items() if key.startswith("backend.")
    )
    if backend_counts:
        lines.append("")
        lines.append("vector-kernel throughput (lifetime):")
        for key, value in backend_counts:
            lines.append(f"  {key:32s} {value:>16,.0f}")
    return "\n".join(lines)


def cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: live one-screen view of a prover server.

    Polls the server's read-only ``{"type": "stats"}`` wire request
    every ``--interval`` seconds and redraws; ``--once`` prints a
    single snapshot and exits (the scripted/CI form).
    """
    address = _parse_address(args.server)
    if address is None:
        return 2
    refreshes = 1 if args.once else args.count
    drawn = 0
    try:
        while True:
            try:
                doc = fetch_stats(
                    address,
                    connect_timeout=args.timeout,
                    read_timeout=args.timeout,
                )
            except (ProtocolViolation, OSError) as exc:
                print(
                    f"error: cannot poll {address[0]}:{address[1]}: {exc}",
                    file=sys.stderr,
                )
                return 1
            if not args.once:
                print("\x1b[2J\x1b[H", end="")
            print(_render_top(doc))
            drawn += 1
            if refreshes is not None and drawn >= refreshes:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def cmd_bench_check(args: argparse.Namespace) -> int:
    """``repro bench-check``: gate a bench artifact against a baseline.

    Exit 0 when every directional metric stayed within tolerance,
    1 on a regression (or a metric silently vanishing), 2 on usage
    errors.  See ``repro.benchgate`` for the direction heuristics.
    """
    from .benchgate import check_files, parse_tolerance

    try:
        tolerance = parse_tolerance(args.max_regress)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        comparison = check_files(args.baseline, args.current, tolerance)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for note in comparison.notes:
        print(f"note: {note}")
    print(
        f"compared {comparison.compared} directional metrics at "
        f"tolerance {tolerance:.0%} "
        f"({comparison.skipped_directionless} structural values skipped)"
    )
    for regression in comparison.improvements:
        print(f"improved: {regression.describe()}")
    for path in comparison.missing:
        print(f"MISSING: {'.'.join(path)} (in baseline, absent from current)")
    for regression in comparison.regressions:
        print(f"REGRESSION: {regression.describe()}")
    if comparison.ok:
        print("bench-check: OK")
        return 0
    print("bench-check: FAILED", file=sys.stderr)
    return 1


def cmd_deploy(args: argparse.Namespace) -> int:
    """``repro deploy``: run the deployment-grid chaos orchestrator.

    One gateway + ``--verifiers`` forked verifier processes per grid
    cell, swept over the repeatable ``--batch``/``--shards``/
    ``--link``/``--churn`` axes.  Churn is seeded and deterministic:
    per session the plan picks none / drop-the-commit (exercises the
    resume-token path) / kill-the-verifier (the parked session must
    expire and the slot is respawned).  Every cell is audited against
    the churn invariants (no leaked sessions or leases, balanced
    ledgers, every completed session verified); the consolidated
    artifact lands in ``--out``/BENCH_deploy.json for
    ``repro bench-check``.  With ``--check``, exits 1 unless every
    cell's invariants hold.
    """
    from .benchgate import bench_metadata
    from .deploy import grid_cells, run_grid

    field = _field(args.field)
    registry = _trace_app_registry()
    if args.app not in registry:
        print(
            f"error: unknown app {args.app!r} "
            f"(choose from {', '.join(sorted(registry))})",
            file=sys.stderr,
        )
        return 2
    app = registry[args.app]
    program = app.compile(field)
    config = ArgumentConfig(params=SoundnessParams(rho_lin=2, rho=1))
    cells = grid_cells(
        batches=args.batch or [2],
        shards=args.shards if args.shards is not None else [0],
        links=args.link or ["lan"],
        churns=args.churn or [0.0],
        verifiers=args.verifiers,
        sessions=args.sessions,
    )
    print(
        f"deploy grid: {len(cells)} cells over app {app.name!r} "
        f"({args.verifiers} verifiers x {args.sessions} sessions each)"
    )
    results = run_grid(
        program,
        config,
        cells,
        seed=args.seed,
        input_generator=lambda rng: app.generate_inputs(rng),
        read_timeout=args.read_timeout,
        resume_timeout=args.resume_timeout,
        log=print,
    )
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "BENCH_deploy.json"
    document = {
        "figure": "deploy",
        "meta": bench_metadata(backend=field.backend.name),
        "results": results,
    }
    path.write_text(json.dumps(document, indent=2) + "\n")
    print(f"wrote {path}")
    if not results["grid_ok"]:
        print("deploy: INVARIANT VIOLATION", file=sys.stderr)
        return 1 if args.check else 0
    print("deploy: all cell invariants hold")
    return 0


def cmd_microbench(args: argparse.Namespace) -> int:
    """``repro microbench``: measure the Figure-3 cost parameters."""
    field = _field(args.field)
    mb = run_microbench(field, reps=args.reps, crypto_reps=args.crypto_reps)
    print(f"field: {field.name} ({field.bits} bits)")
    for key, value in mb.as_row().items():
        unit, scale = ("us", 1e6) if value >= 1e-6 else ("ns", 1e9)
        print(f"  {key:7s}: {value * scale:10.2f} {unit}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zaatar verified computation (EuroSys 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--field",
        default="goldilocks",
        choices=sorted(NAMED_FIELDS),
        help="prime field (default: goldilocks; the paper used p128/p220)",
    )

    p_compile = sub.add_parser(
        "compile", parents=[common], help="compile a program, print encoding stats"
    )
    p_compile.add_argument("program", help="path to a .zr source file")
    p_compile.add_argument("--bit-width", type=int, default=32)
    p_compile.set_defaults(fn=cmd_compile)

    p_prove = sub.add_parser(
        "prove", parents=[common], help="run the batched argument on input vectors"
    )
    p_prove.add_argument("program")
    p_prove.add_argument("--bit-width", type=int, default=32)
    p_prove.add_argument(
        "--inputs",
        action="append",
        default=[],
        help="comma-separated input vector; repeat for a batch",
    )
    p_prove.add_argument("--rho-lin", type=int, default=3)
    p_prove.add_argument("--rho", type=int, default=2)
    p_prove.add_argument(
        "--paper-soundness",
        action="store_true",
        help="use the paper's production parameters (rho_lin=20, rho=8; slow)",
    )
    p_prove.add_argument("--no-commitment", action="store_true")
    p_prove.add_argument(
        "--workers",
        type=int,
        default=1,
        help="prover worker processes (>1 uses the resilient batch engine)",
    )
    p_prove.add_argument(
        "--checkpoint",
        metavar="DIR",
        help="persist per-instance progress to DIR and resume a killed "
        "run without re-proving finished instances",
    )
    p_prove.set_defaults(fn=cmd_prove)

    p_trace = sub.add_parser(
        "trace",
        parents=[common],
        help="run the argument under telemetry and write a JSONL trace",
    )
    p_trace.add_argument("program", nargs="?", help="path to a .zr source file")
    p_trace.add_argument("--bit-width", type=int, default=32)
    p_trace.add_argument(
        "--inputs",
        action="append",
        default=[],
        help="comma-separated input vector; repeat for a batch",
    )
    p_trace.add_argument(
        "--app",
        help="run a built-in benchmark app instead of a .zr file (e.g. matmul)",
    )
    p_trace.add_argument(
        "--size",
        action="append",
        default=[],
        metavar="NAME=INT",
        help="app size parameter; repeat (e.g. --size m=2)",
    )
    p_trace.add_argument("--batch", type=int, default=1, help="app batch size")
    p_trace.add_argument("--seed", type=int, default=0, help="app input RNG seed")
    p_trace.add_argument("--rho-lin", type=int, default=2)
    p_trace.add_argument("--rho", type=int, default=1)
    p_trace.add_argument(
        "--no-net",
        dest="net",
        action="store_false",
        help="skip the loopback network session (no net.* counters)",
    )
    p_trace.add_argument("--out", help="trace path (default: <program>.trace.jsonl)")
    p_trace.add_argument(
        "--remote",
        metavar="HOST:PORT",
        help="verify against a running prover server instead of running "
        "locally; the rendered tree stitches the server's session spans in",
    )
    p_trace.add_argument(
        "--json",
        action="store_true",
        help="emit the run (spans, counters, verdict) as JSON on stdout",
    )
    p_trace.set_defaults(fn=cmd_trace)

    p_check = sub.add_parser(
        "check",
        parents=[common],
        help="differentially test compiled constraint systems "
        "(semantics oracle + unsat probes + mutation-kill gate)",
    )
    p_check.add_argument("program", nargs="?", help="path to a .zr source file")
    p_check.add_argument("--bit-width", type=int, default=32)
    p_check.add_argument(
        "--app",
        help="check a built-in scenario app instead of a .zr file "
        "('all' sweeps the whole scenario library)",
    )
    p_check.add_argument(
        "--size",
        action="append",
        default=[],
        metavar="NAME=INT",
        help="app size parameter; repeat (e.g. --size m=2)",
    )
    p_check.add_argument("--seed", type=int, default=0, help="checker RNG seed")
    p_check.add_argument(
        "--random", type=int, default=6, metavar="N", help="random oracle inputs"
    )
    p_check.add_argument(
        "--input-bits",
        type=int,
        default=8,
        help="input magnitude for .zr programs without a generator (default 8)",
    )
    p_check.add_argument(
        "--no-mutations",
        dest="mutations",
        action="store_false",
        help="skip the compiler-mutation harness (oracle + probes only)",
    )
    p_check.add_argument(
        "--mutations-per-kind",
        type=int,
        default=3,
        metavar="N",
        help="seeded faults per mutation kind (default 3)",
    )
    p_check.add_argument("--out", help="also write the JSON report here")
    p_check.add_argument(
        "--json",
        action="store_true",
        help="emit the byte-deterministic JSON report on stdout",
    )
    p_check.set_defaults(fn=cmd_check)

    p_serve = sub.add_parser(
        "serve",
        parents=[common],
        help="run a prover server for one compiled program",
    )
    p_serve.add_argument("program", help="path to a .zr source file")
    p_serve.add_argument("--bit-width", type=int, default=32)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0, help="0 picks a free port")
    p_serve.add_argument(
        "--max-sessions",
        type=int,
        default=8,
        help="concurrent session cap; extra clients get a 'busy' error frame",
    )
    p_serve.add_argument(
        "--read-timeout",
        type=float,
        default=120.0,
        help="per-recv deadline in seconds (how long a client may go silent)",
    )
    p_serve.add_argument(
        "--session-budget",
        type=float,
        default=None,
        help="wall-clock budget per session in seconds (default: unbounded)",
    )
    p_serve.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many seconds then exit (default: until interrupted)",
    )
    p_serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve live metrics over HTTP on this port (0 picks one)",
    )
    p_serve.add_argument(
        "--registry",
        action="append",
        default=[],
        metavar="PROGRAM.zr",
        help="host this additional program too (repeatable; turns the "
        "server into a multi-tenant gateway keyed by program hash)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="gateway mode: pin each session's proving to one of N "
        "crash-surviving worker processes (0 proves on the session thread)",
    )
    p_serve.add_argument(
        "--accept-queue",
        type=int,
        default=16,
        metavar="N",
        help="gateway mode: admitted connections may wait in a queue this "
        "deep; past it clients are shed with busy + retry_after",
    )
    p_serve.add_argument(
        "--per-program-sessions",
        type=int,
        default=None,
        metavar="N",
        help="gateway mode: cap concurrent sessions per hosted program "
        "(default: no per-program cap)",
    )
    p_serve.add_argument(
        "--accept-rate",
        type=float,
        default=None,
        metavar="PER_SEC",
        help="gateway mode: token-bucket accept pacing against reconnect "
        "storms; excess connects get busy + jittered retry_after "
        "(default: off)",
    )
    p_serve.add_argument(
        "--resume-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="gateway mode: how long a disconnected pre-commit session "
        "may park awaiting a resume before it is reaped (default: 30)",
    )
    p_serve.set_defaults(fn=cmd_serve)

    p_deploy = sub.add_parser(
        "deploy",
        parents=[common],
        help="deployment-grid chaos run: gateway + N verifier processes "
        "under seeded churn and WAN link emulation",
    )
    p_deploy.add_argument(
        "--app",
        default="pam_clustering",
        help="benchmark app to serve (see 'repro trace --app'; default pam_clustering)",
    )
    p_deploy.add_argument(
        "--verifiers", type=int, default=4, help="verifier processes per cell"
    )
    p_deploy.add_argument(
        "--sessions", type=int, default=3, help="sessions each verifier drives"
    )
    p_deploy.add_argument(
        "--batch",
        action="append",
        type=int,
        metavar="N",
        help="batch-size axis (repeatable; default 2)",
    )
    p_deploy.add_argument(
        "--shards",
        action="append",
        type=int,
        default=None,
        metavar="N",
        help="shard-count axis (repeatable; default 0 = inline proving)",
    )
    p_deploy.add_argument(
        "--link",
        action="append",
        choices=sorted(LINK_PROFILES),
        metavar="PROFILE",
        help="link-profile axis (repeatable; lan, wan-50ms, wan-100ms, "
        "wan-100ms-lossy, dsl-1mbps; default lan)",
    )
    p_deploy.add_argument(
        "--churn",
        action="append",
        type=float,
        metavar="P",
        help="churn-probability axis (repeatable; default 0.0)",
    )
    p_deploy.add_argument("--seed", type=int, default=0)
    p_deploy.add_argument(
        "--read-timeout",
        type=float,
        default=30.0,
        help="per-recv deadline on both sides (default: 30)",
    )
    p_deploy.add_argument(
        "--resume-timeout",
        type=float,
        default=3.0,
        help="gateway park window before an abandoned session is reaped",
    )
    p_deploy.add_argument(
        "--out",
        default="benchmarks/out",
        help="artifact directory (default: benchmarks/out)",
    )
    p_deploy.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every cell's churn invariants hold",
    )
    p_deploy.set_defaults(fn=cmd_deploy)

    p_top = sub.add_parser(
        "top", help="live one-screen stats view of a running prover server"
    )
    p_top.add_argument("server", metavar="HOST:PORT", help="prover server address")
    p_top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    p_top.add_argument(
        "--once", action="store_true", help="print one snapshot and exit"
    )
    p_top.add_argument(
        "--count",
        type=int,
        default=None,
        help="exit after this many refreshes (default: until interrupted)",
    )
    p_top.add_argument(
        "--timeout", type=float, default=5.0, help="per-poll socket timeout"
    )
    p_top.set_defaults(fn=cmd_top)

    p_bench = sub.add_parser(
        "bench-check",
        help="compare two BENCH_*.json artifacts, fail on perf regressions",
    )
    p_bench.add_argument("baseline", help="baseline BENCH_*.json")
    p_bench.add_argument("current", help="current BENCH_*.json")
    p_bench.add_argument(
        "--max-regress",
        default="15%",
        help="worst tolerated relative move in a metric's worse direction "
        "('15%%' or '0.15'; default 15%%)",
    )
    p_bench.set_defaults(fn=cmd_bench_check)

    p_mb = sub.add_parser(
        "microbench", parents=[common], help="measure the Figure-3 cost parameters"
    )
    p_mb.add_argument("--reps", type=int, default=1000)
    p_mb.add_argument("--crypto-reps", type=int, default=20)
    p_mb.set_defaults(fn=cmd_microbench)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
