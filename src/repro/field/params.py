"""Named prime-field parameters used throughout the system.

The paper (§5.1) runs its benchmarks over 128-bit and 220-bit prime
moduli (plus a 192-bit example in §A.2).  We hardcode primes of those
sizes that are additionally *NTT-friendly*: each p satisfies
``p = k * 2^40 + 1``, so the multiplicative group contains a subgroup
of order ``2^40`` and radix-2 NTTs of length up to ``2^40`` exist.
The paper's protocol does not need NTT-friendliness (it interpolates at
an arithmetic progression, §A.3), but the prover's FFT pipeline gains a
fast path when it is available, and the ablation bench compares both
placements of the interpolation points.

``GOLDILOCKS`` (2^64 - 2^32 + 1, 2-adicity 32) is a small field used by
the test suite where 128-bit arithmetic would only slow things down.

Each entry also records a generator of its maximal power-of-two
subgroup, from which roots of unity of any supported order are derived.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FieldParams:
    """Modulus plus NTT metadata for a named prime field."""

    name: str
    modulus: int
    two_adicity: int
    #: generator of the subgroup of order ``2**two_adicity``
    two_adic_generator: int

    @property
    def bits(self) -> int:
        """Bit length of the modulus."""
        return self.modulus.bit_length()


#: 128-bit NTT-friendly prime (the paper's default field size).
P128 = FieldParams(
    name="p128",
    modulus=0xFFFFFFFFFFFFFFFFFFFFD30000000001,
    two_adicity=40,
    two_adic_generator=23953097886125630542083529559205016746,
)

#: 192-bit prime (|F| = 2^192 appears in §A.2's soundness discussion).
P192 = FieldParams(
    name="p192",
    modulus=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF60000000001,
    two_adicity=40,
    two_adic_generator=4789798367955309605211018953656798274250542364688899898814,
)

#: 220-bit prime (used by the paper for rational-number benchmarks).
P220 = FieldParams(
    name="p220",
    modulus=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF880000000001,
    two_adicity=40,
    two_adic_generator=760016570176912676413538580522621635407912459323713766928047861002,
)

#: 64-bit "Goldilocks" prime, fast for tests; 2-adicity 32.
GOLDILOCKS = FieldParams(
    name="goldilocks",
    modulus=2**64 - 2**32 + 1,
    two_adicity=32,
    two_adic_generator=1753635133440165772,
)

NAMED_FIELDS = {p.name: p for p in (P128, P192, P220, GOLDILOCKS)}


def field_params(name: str) -> FieldParams:
    """Look up a named field; raises ``KeyError`` with the known names."""
    try:
        return NAMED_FIELDS[name]
    except KeyError:
        known = ", ".join(sorted(NAMED_FIELDS))
        raise KeyError(f"unknown field {name!r}; known fields: {known}") from None
