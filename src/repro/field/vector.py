"""Vector operations over prime fields.

The argument system is dominated by operations on long vectors of field
elements: the proof vector u, query vectors q_i, and their inner
products.  These helpers keep that code in one place and use lazy
reduction wherever the math permits.
"""

from __future__ import annotations

from typing import Sequence

from .prime_field import PrimeField


def vec_add(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Componentwise sum."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    p = field.p
    return [(x + y) % p for x, y in zip(a, b)]


def vec_sub(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Componentwise difference."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    p = field.p
    return [(x - y) % p for x, y in zip(a, b)]


def vec_neg(field: PrimeField, a: Sequence[int]) -> list[int]:
    """Componentwise negation."""
    p = field.p
    return [(-x) % p for x in a]


def vec_scale(field: PrimeField, c: int, a: Sequence[int]) -> list[int]:
    """Scalar multiple c·a."""
    p = field.p
    return [c * x % p for x in a]


def vec_addmul(
    field: PrimeField, a: Sequence[int], c: int, b: Sequence[int]
) -> list[int]:
    """a + c*b, the FMA shape used when folding queries together."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    p = field.p
    return [(x + c * y) % p for x, y in zip(a, b)]


def inner(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> int:
    """<a, b> with a single final reduction."""
    return field.inner_product(a, b)


def outer(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Outer product a ⊗ b, flattened row-major.

    Ginger's proof vector is ``(z, z ⊗ z)`` (§2.2); this is quadratic in
    ``len(a)`` and is what Zaatar's encoding eliminates.
    """
    p = field.p
    out: list[int] = []
    for x in a:
        out.extend(x * y % p for y in b)
    return out


def hadamard(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Componentwise product."""
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")
    p = field.p
    return [x * y % p for x, y in zip(a, b)]


def powers(field: PrimeField, x: int, count: int) -> list[int]:
    """[1, x, x^2, ..., x^(count-1)] — the q_d query shape of Fig 10."""
    p = field.p
    out = [0] * count
    if count == 0:
        return out
    acc = 1
    for i in range(count):
        out[i] = acc
        acc = acc * x % p
    return out
