"""Vector operations over prime fields.

The argument system is dominated by operations on long vectors of field
elements: the proof vector u, query vectors q_i, and their inner
products.  These helpers are thin wrappers over the field's vector
methods, which dispatch to the active kernel backend
(``repro.field.backend``) — pure-Python scalar loops or batched numpy
kernels, bit-identical either way.
"""

from __future__ import annotations

from typing import Sequence

from .prime_field import PrimeField


def vec_add(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Componentwise sum."""
    return field.vec_add(a, b)


def vec_sub(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Componentwise difference."""
    return field.vec_sub(a, b)


def vec_neg(field: PrimeField, a: Sequence[int]) -> list[int]:
    """Componentwise negation."""
    return field.vec_neg(a)


def vec_scale(field: PrimeField, c: int, a: Sequence[int]) -> list[int]:
    """Scalar multiple c·a."""
    return field.vec_scale(c, a)


def vec_addmul(
    field: PrimeField, a: Sequence[int], c: int, b: Sequence[int]
) -> list[int]:
    """a + c*b, the FMA shape used when folding queries together."""
    return field.vec_addmul(a, c, b)


def inner(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> int:
    """<a, b> with a single final reduction."""
    return field.inner_product(a, b)


def outer(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Outer product a ⊗ b, flattened row-major.

    Ginger's proof vector is ``(z, z ⊗ z)`` (§2.2); this is quadratic in
    ``len(a)`` and is what Zaatar's encoding eliminates.
    """
    p = field.p
    out: list[int] = []
    for x in a:
        out.extend(x * y % p for y in b)
    return out


def hadamard(field: PrimeField, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Componentwise product."""
    return field.hadamard(a, b)


def powers(field: PrimeField, x: int, count: int) -> list[int]:
    """[1, x, x^2, ..., x^(count-1)] — the q_d query shape of Fig 10."""
    p = field.p
    out = [0] * count
    if count == 0:
        return out
    acc = 1
    for i in range(count):
        out[i] = acc
        acc = acc * x % p
    return out
