"""CRT residue planes: exact batched big-modulus convolution on uint64.

The 128/192/220-bit moduli have no native machine-word kernel, so their
polynomial products normally run on the chunked ``object``-dtype path —
every multiply a Python big-int multiply.  This module lifts *batched*
polynomial products off that path entirely.

The trick is that a product of polynomials with coefficients in
``[0, p)`` is, before any modular reduction, an **integer** convolution
whose coefficients are bounded by ``min(la, lb) · (p − 1)²``.  Compute
that integer convolution exactly and ``% p`` at the end, and the result
is bit-identical to the scalar route.  To compute it exactly on 64-bit
hardware:

1. split every coefficient into residues modulo ``k`` NTT-friendly
   30-bit **plane primes** ``q = c·2^20 + 1`` (``c`` odd, so the
   two-adicity is exactly 20 — convolutions up to length ``2^20``);
2. run the whole ``batch × size`` matrix of rows through stacked
   uint64 NTTs per plane, driven by each plane field's cached
   :class:`~repro.poly.plan.NTTPlan` butterfly schedule.  The plane
   arithmetic is **division-free Montgomery** (R = 2^32): twiddles are
   stored premultiplied by R, so ``mont_mul(x, t·R) = x·t mod q`` keeps
   the data in normal form with only masks, shifts and conditional
   subtractions — no hardware integer division in the butterflies,
   which is what the generic uint64 kernel's ``%`` reductions spend
   most of their time on;
3. reconstruct the unique integer below ``Πqᵢ`` from the residue
   convolutions with Garner's mixed-radix algorithm — the O(k²) digit
   passes stay vectorized in uint64 (Montgomery again), adjacent digit
   pairs are folded into single uint64 values, and only the final
   recombination over the folded pairs touches big ints — a weighted
   sum with weights pre-reduced mod ``p`` (one small multiply-add per
   *pair* of planes per element, instead of a big-int multiply per
   *butterfly*).

Because ``Πqᵢ`` is chosen strictly above the coefficient bound, step 3
recovers the exact integer convolution, so the reduced result equals
``poly_mul`` coefficient-for-coefficient — the parity suite pins this
against the scalar backend (``tests/property/test_backend_parity.py``).

Entry point: :func:`mat_polymul_crt`, called by
``NumpyBackend.mat_polymul`` for object-kernel moduli.  It returns
``None`` for any shape it cannot cover exactly (ragged rows,
non-canonical values, convolutions beyond ``2^20``), and callers fall
back to the existing routes — the fast path is an optimization, never
a semantic fork.
"""

from __future__ import annotations

import threading

from .. import telemetry

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: two-adicity of every plane prime (q = c·2^20 + 1, c odd)
PLANE_TWO_ADICITY = 20

#: largest convolution length the planes can transform
MAX_CONV = 1 << PLANE_TWO_ADICITY

_MASK32 = (1 << 32) - 1

#: target elements per batch tile (keeps plane arrays cache-resident)
_TILE_ELEMS = 1 << 14

_LOCK = threading.Lock()
#: plane primes found so far, in discovery order (largest c first);
#: every plane set is a prefix of this list, so sets are deterministic
_PLANE_PRIMES: list[int] = []
#: next candidate multiplier c (odd, descending; c·2^20 + 1 < 2^30, so
#: lazy butterfly values in [0, 4q) stay below 2^32 and every product
#: in the REDC pipeline fits uint64)
_NEXT_C = (1 << 10) - 1
_PLANE_SETS: dict[int, "_PlaneSet"] = {}


def _extend_primes(count: int) -> bool:
    """Grow ``_PLANE_PRIMES`` to at least ``count`` entries (locked)."""
    global _NEXT_C
    from .prime_field import is_probable_prime  # deferred: import cycle

    while len(_PLANE_PRIMES) < count:
        if _NEXT_C <= 0:
            return False
        candidate = _NEXT_C * (1 << PLANE_TWO_ADICITY) + 1
        _NEXT_C -= 2
        if is_probable_prime(candidate):
            _PLANE_PRIMES.append(candidate)
    return True


class _Mont:
    """Division-free arithmetic mod one plane prime, R = 2^32, q < 2^30.

    ``mul_lazy(a, bm)`` computes ``a·b·R⁻¹ mod q`` in the *lazy* range
    ``[0, 2q)`` for any ``a, bm < 2^32``: the REDC step replaces the
    hardware integer division of a plain ``%`` with a mask, two
    multiplies and a shift, and skipping the final canonicalization
    saves two more passes.  All intermediates fit uint64
    (``a·bm < 2^62``, ``x + m·q < 2^63``), and ``q < 2^30`` keeps the
    output below ``2q``: ``t < a·bm/R + q ≤ 4q·q/2^32 + q < 2q``.
    """

    def __init__(self, q: int):
        self.q = q
        self.qu = _np.uint64(q)
        self.two_q = _np.uint64(2 * q)
        self.mask = _np.uint64(_MASK32)
        self.shift = _np.uint64(32)
        self.neg_qinv = _np.uint64((-pow(q, -1, 1 << 32)) % (1 << 32))

    def to_mont(self, value: int) -> int:
        """The Montgomery form ``value·R mod q`` (for constant tables)."""
        return (value << 32) % self.q

    def mul_lazy(self, a, bm):
        """``a·b mod q`` or ``q`` more, for ``a < 4q``, ``bm < 2q``."""
        x = a * bm
        m = x * self.neg_qinv
        m &= self.mask
        m *= self.qu
        m += x
        m >>= self.shift  # exact multiple of R removed; result < 2q
        return m

    def mul(self, a, bm):
        """Canonical ``a·b mod q`` for ``a < 4q``, ``bm = b·R mod q``.

        The conditional subtraction is a ``minimum``: ``t − q`` wraps
        to a huge value exactly when ``t < q``, so the elementwise
        minimum of ``t`` and ``t − q`` is the canonical representative
        of ``t`` whenever ``t < 2q`` — comparison, bool cast and
        multiply fused into two passes.
        """
        m = self.mul_lazy(a, bm)
        return _np.minimum(m, m - self.qu)

    def add(self, u, v):
        s = u + v
        return _np.minimum(s, s - self.qu)

    def sub(self, u, v):
        # wraparound when u < v puts u − v above 2^63; adding q back
        # lands on the true canonical value, which minimum then picks
        d = u - v
        return _np.minimum(d, d + self.qu)


class _PlaneSet:
    """The first ``k`` plane primes plus their Montgomery/Garner tables."""

    def __init__(self, primes: list[int]):
        from .prime_field import PrimeField

        self.primes = primes
        self.modulus = 1
        for q in primes:
            self.modulus *= q
        self.monts = [_Mont(q) for q in primes]
        # scalar-backend fields: we only need them as NTTPlan keys (the
        # Montgomery plane ops drive the actual transforms)
        self.fields = [
            PrimeField(q, check_prime=False, backend="scalar") for q in primes
        ]
        # Garner: inv[j][i] = q_i^{-1} mod q_j (Montgomery form), i < j
        self.inv = [
            [
                _np.uint64(self.monts[j].to_mont(pow(primes[i], -1, primes[j])))
                for i in range(j)
            ]
            for j in range(len(primes))
        ]
        # digits d_i < q_i reduce mod q_j by one conditional subtract
        # only while every prime is within 2× of every other; the c
        # multipliers would have to fall below ~2^10 (hundreds of
        # planes) before this fails, but guard it anyway
        self.close_primes = primes[0] < 2 * primes[-1]


def _plane_set_for(bound: int) -> "_PlaneSet | None":
    """The cached plane set whose prime product strictly exceeds ``bound``."""
    with _LOCK:
        k = 0
        product = 1
        while product <= bound:
            k += 1
            if not _extend_primes(k):  # pragma: no cover - needs ~2^1500 bound
                return None
            product *= _PLANE_PRIMES[k - 1]
        planes = _PLANE_SETS.get(k)
        if planes is None:
            planes = _PLANE_SETS[k] = _PlaneSet(_PLANE_PRIMES[:k])
        return planes


def _as_matrix(rows, p: int):
    """Rows → a rectangular object-dtype matrix of canonical values, or None."""
    arr = _np.asarray(rows, dtype=object)
    if arr.ndim != 2:
        return None
    if arr.size and bool(((arr < 0) | (arr >= p)).any()):
        return None
    return arr


def _limbs(obj_matrix, n_limbs: int) -> list:
    """The 32-bit little-endian limb planes of an object matrix, as uint64.

    Extracted one 64-bit *word* at a time — two object-dtype passes per
    word instead of three per limb — then split into 32-bit halves with
    cheap uint64 ops (object→uint64 casts are exact below 2^64).
    """
    mask32 = _np.uint64(_MASK32)
    shift32 = _np.uint64(32)
    out: list = []
    n_words = (n_limbs + 1) // 2
    for w in range(n_words):
        src = obj_matrix if w == 0 else obj_matrix >> (64 * w)
        if w < n_words - 1:
            src = src & ((1 << 64) - 1)
        word = src.astype(_np.uint64)
        out.append(word & mask32)
        if len(out) < n_limbs:
            out.append(word >> shift32)
    return out


def _fold_plane(limbs: list, q: int):
    """Residues mod ``q`` of the integers with the given limb planes.

    Horner in base 2^32: ``acc·(2^32 mod q) + limb`` stays below
    ``2^31·2^31 + 2^32 < 2^63``, so the fold never wraps uint64.
    """
    qu = _np.uint64(q)
    b32 = _np.uint64((1 << 32) % q)
    acc = _np.zeros(limbs[0].shape, dtype=_np.uint64)
    for limb in reversed(limbs):
        acc = (acc * b32 + limb) % qu
    return acc


def _mont_scratch(plan, mont: "_Mont"):
    """Montgomery-form twiddle tables for one plane's plan, cached.

    The inverse-transform tail tables fold in an extra R on top of the
    plan's ``n⁻¹`` scaling (``to_mont`` applied twice), cancelling the
    R⁻¹ that the Montgomery pointwise product leaves on every element —
    so the inverse transform here is only correct for post-pointwise
    data, which is the only way the convolution uses it.
    """
    scratch = plan.np_scratch.get("mont")
    if scratch is None:
        perm = _np.arange(plan.n)
        for i, j in plan.swaps:
            perm[i], perm[j] = perm[j], perm[i]
        to = mont.to_mont
        scratch = {
            "perm": perm,
            "fwd": [
                _np.asarray([to(x) for x in t], dtype=_np.uint64) for t in plan.fwd
            ],
            "inv_head": [
                _np.asarray([to(x) for x in t], dtype=_np.uint64)
                for t in plan._inv_head
            ],
            "n_inv": _np.uint64(to(to(plan.n_inv))),
            "inv_last": _np.asarray(
                [to(to(x)) for x in plan._inv_last], dtype=_np.uint64
            ),
        }
        # build fully, then publish: setdefault keeps the first complete
        # dict when two threads race on the same plan
        scratch = plan.np_scratch.setdefault("mont", scratch)
    return scratch


def _mont_butterflies(mont: "_Mont", a, tables, *, skip_first: bool = False) -> None:
    """Harvey-style lazy butterflies: [0, 4q) in, [0, 4q) out.

    Only the ``u`` half is reduced (to ``[0, 2q)``) at the top of each
    level; ``t`` comes out of the lazy multiply below ``2q``, so
    ``u + t`` and ``u − t + 2q`` stay below ``4q`` without any per-level
    canonicalization of the outputs — three fewer vectorized passes per
    level than a canonical butterfly.
    """
    if skip_first:
        # zero-padded inputs of width ≤ n/2 land their zeros on every
        # odd (bit-reversal) position, so the h=1 level degenerates to
        # u' = u, v' = u — a single copy instead of a full butterfly
        view = a.reshape(-1, 2)
        view[:, 1] = view[:, 0]
        tables = tables[1:]
    two_q = mont.two_q
    for tw in tables:
        h = tw.size
        view = a.reshape(-1, 2 * h)
        u = view[:, :h]
        u = _np.minimum(u, u - two_q)  # [0, 4q) → [0, 2q)
        t = mont.mul_lazy(view[:, h:], tw)  # [0, 2q)
        _np.add(u, t, out=view[:, :h])  # u + t < 4q
        u -= t  # wraps below zero where u < t …
        _np.add(u, two_q, out=view[:, h:])  # … + 2q restores: < 4q


def _plane_convolve(mont: "_Mont", plan, ra, rb, size: int):
    """Stacked cyclic convolution of residue rows on one plane."""
    batch = ra.shape[0]
    pa = _np.zeros((batch, size), dtype=_np.uint64)
    pa[:, : ra.shape[1]] = ra
    pb = _np.zeros((batch, size), dtype=_np.uint64)
    pb[:, : rb.shape[1]] = rb
    scratch = _mont_scratch(plan, mont)
    perm = scratch["perm"]
    # ascontiguousarray: the butterflies mutate through a reshaped view,
    # which column fancy-indexing's non-C-order result would break
    half = size >> 1
    two_q = mont.two_q
    qu = mont.qu
    fa = _np.ascontiguousarray(pa[:, perm])
    _mont_butterflies(mont, fa, scratch["fwd"], skip_first=ra.shape[1] <= half)
    fb = _np.ascontiguousarray(pb[:, perm])
    _mont_butterflies(mont, fb, scratch["fwd"], skip_first=rb.shape[1] <= half)
    # lazy outputs are in [0, 4q); one reduction each keeps the
    # pointwise operands below 2q so their product fits uint64
    _np.minimum(fa, fa - two_q, out=fa)
    _np.minimum(fb, fb - two_q, out=fb)
    prod = mont.mul_lazy(fa, fb)  # carries a uniform R⁻¹ factor …
    a = _np.ascontiguousarray(prod[:, perm])
    _mont_butterflies(mont, a, scratch["inv_head"])
    # … cancelled here by the doubly-Montgomery tail tables; the lazy
    # sums (< 4q) canonicalize with two conditional subtractions
    u = mont.mul_lazy(a[..., :half], scratch["n_inv"])
    v = mont.mul_lazy(a[..., half:], scratch["inv_last"])
    s = u + v  # < 4q
    d = u - v
    d += two_q  # u − v + 2q ∈ (0, 4q)
    for lazy, dst in ((s, a[..., :half]), (d, a[..., half:])):
        _np.minimum(lazy, lazy - two_q, out=lazy)
        _np.minimum(lazy, lazy - qu, out=dst)
    return a


def _garner_digits(planes: "_PlaneSet", residues: list) -> list:
    """Mixed-radix digits d_i from per-plane residues, vectorized.

    ``x = d_0 + q_0·(d_1 + q_1·(d_2 + …))`` with ``0 ≤ d_i < q_i``.
    Every intermediate stays a uint64 array below 2^63.
    """
    fast = planes.close_primes
    digits = [residues[0]]
    for j in range(1, len(planes.primes)):
        qj = planes.primes[j]
        qju = _np.uint64(qj)
        mont = planes.monts[j]
        t = residues[j]
        for i in range(j):
            if fast:  # d_i < q_i < 2·q_j, so one conditional subtract
                di = _np.minimum(digits[i], digits[i] - qju)
                t = mont.sub(t, di)
                t = mont.mul(t, planes.inv[j][i])
            else:  # pragma: no cover - needs hundreds of planes
                di = digits[i] % qju
                t = (t + (qju - di)) % qju
                t = mont.mul(t, planes.inv[j][i])
        digits.append(t)
    return digits


def _fold_digit_pairs(planes: "_PlaneSet", digits: list) -> list:
    """Fold adjacent mixed-radix digits into single uint64 planes.

    ``d_{2t} + q_{2t}·d_{2t+1} < 2^31 + 2^31·2^31 < 2^63`` fits uint64,
    halving the number of big-int recombination passes downstream.
    """
    primes = planes.primes
    folded = []
    for t in range(0, len(digits) - 1, 2):
        folded.append(digits[t] + _np.uint64(primes[t]) * digits[t + 1])
    if len(digits) % 2:
        folded.append(digits[-1])
    return folded


def _pair_weights(planes: "_PlaneSet", p: int) -> list:
    """Positional weights of the folded digit pairs, pre-reduced mod p.

    The reconstructed integer is ``x = Σ W_t·e_t`` with
    ``W_t = Πᵢ<₂ₜ qᵢ``.  Only ``x mod p`` is ever needed, so the weights
    enter the sum already reduced: every product is then a 63-bit array
    element times a value below ``p`` instead of Horner's ever-growing
    multi-hundred-bit accumulator, and the final ``%`` sees
    ``k/2 · p · 2^63`` instead of the full ``Πqᵢ``-sized integers.
    """
    primes = planes.primes
    weights, w = [], 1
    for t in range(0, len(primes), 2):
        weights.append(w % p)
        w *= primes[t] * (primes[t + 1] if t + 1 < len(primes) else 1)
    return weights


def mat_polymul_crt(p: int, rows_a, rows_b):
    """Batched exact polynomial products mod ``p`` via residue planes.

    Returns the full untrimmed convolutions
    ``[poly_mul(rows_a[i], rows_b[i]) for i]`` as lists of canonical
    ints, bit-identical to the scalar route — or ``None`` when the fast
    path does not apply (numpy missing, ragged or empty rows,
    non-canonical values, convolution longer than ``2^20``).
    """
    if _np is None:  # pragma: no cover - exercised via the no-numpy CI job
        return None
    batch = len(rows_a)
    if batch == 0 or len(rows_b) != batch:
        return None
    la = len(rows_a[0])
    lb = len(rows_b[0])
    if la == 0 or lb == 0:
        return None
    out_len = la + lb - 1
    if out_len > MAX_CONV:
        return None
    obj_a = _as_matrix(rows_a, p)
    obj_b = _as_matrix(rows_b, p)
    if obj_a is None or obj_b is None:
        return None
    # every output coefficient is a sum of ≤ min(la, lb) products of
    # values ≤ p − 1; the plane product must strictly dominate it
    bound = min(la, lb) * (p - 1) ** 2
    planes = _plane_set_for(bound)
    if planes is None:  # pragma: no cover - needs an astronomical modulus
        return None
    size = 2  # n = 1 plans have no butterfly levels; 2 is the floor
    while size < out_len:
        size <<= 1
    from ..poly.plan import get_ntt_plan  # deferred: import cycle

    n_limbs = max(1, (p.bit_length() + 31) // 32)
    plans = [get_ntt_plan(field, size) for field in planes.fields]
    # process the batch in row tiles of ~2^15 elements: a full-batch
    # (batch × size) working array per plane falls out of L2 at large
    # sizes and every butterfly pass streams from main memory instead
    tile = max(4, _TILE_ELEMS // size)
    weights = _pair_weights(planes, p)
    result: list = []
    for lo in range(0, batch, tile):
        limbs_a = _limbs(obj_a[lo : lo + tile], n_limbs)
        limbs_b = _limbs(obj_b[lo : lo + tile], n_limbs)
        residues = []
        for q, mont, plan in zip(planes.primes, planes.monts, plans):
            conv = _plane_convolve(
                mont, plan, _fold_plane(limbs_a, q), _fold_plane(limbs_b, q), size
            )
            residues.append(conv[:, :out_len])
        digits = _garner_digits(planes, residues)
        folded = _fold_digit_pairs(planes, digits)
        # weighted recombination mod p — the only big-int arithmetic
        # in the path: x ≡ Σ (W_t mod p)·e_t  (W_0 = 1)
        acc = folded[0].astype(object)
        for t in range(1, len(folded)):
            acc += weights[t] * folded[t].astype(object)
        result.extend((acc % p).tolist())
    telemetry.count("crt.mat_polymul")
    telemetry.count("crt.rows", batch)
    telemetry.count("crt.planes", len(planes.primes))
    return result
