"""Prime-field arithmetic.

``PrimeField`` is the workhorse: it operates on plain Python integers in
``[0, p)`` so that hot loops (NTTs, inner products over proof vectors)
pay no wrapper overhead.  ``FieldElement`` (see ``element.py``) layers an
ergonomic operator API on top for application code.

The microbenchmark parameters of the paper's cost model (§5.1) map onto
methods here: ``f`` is ``mul``, ``f_lazy`` is ``mul_lazy`` (no final
reduction), ``f_div`` is ``div``, and ``c`` is a pseudorandom draw (see
``repro.crypto.prg``).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from .backend import FieldBackend, resolve_backend
from .params import FieldParams, field_params

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller-Rabin primality test (deterministic witnesses + random rounds)."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = random.Random(0xC0FFEE ^ n)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


class PrimeField:
    """Arithmetic modulo a prime ``p``, on raw integers in ``[0, p)``.

    Instances are cheap, hashable by modulus, and safe to share across
    threads (all state is immutable).

    **Canonical-form precondition.**  The comparison-based operations
    ``add``/``sub``/``neg`` assume both operands are already canonical
    (in ``[0, p)``) and *silently return out-of-range results*
    otherwise — they trade the ``%`` reduction for a single compare,
    which is what makes the prover's inner loops affordable in pure
    Python.  ``mul``/``square``/``pow``/``inv``/``div`` reduce fully
    and tolerate any integer operand.  Callers bringing external or
    signed values into the field must go through :meth:`reduce` /
    :meth:`from_signed` first; :class:`CheckedPrimeField` enforces the
    precondition at runtime for tests and debugging.

    **Vector kernels.**  The batch-shaped entry points
    (:meth:`vec_add` … :meth:`inner_product` … :meth:`transform`)
    route through a pluggable :class:`~repro.field.backend.FieldBackend`
    selected at construction (``backend=`` argument, the
    ``REPRO_FIELD_BACKEND`` environment variable, or auto-detection) —
    see ``repro.field.backend``.  All backends are bit-identical on
    canonical inputs; the vector ops reduce fully and tolerate any
    integer operand, like ``mul``.
    """

    __slots__ = (
        "p",
        "name",
        "two_adicity",
        "backend",
        "_two_adic_generator",
        "_root_cache",
    )

    def __init__(
        self,
        params_or_modulus: FieldParams | int,
        *,
        check_prime: bool = True,
        backend: "str | FieldBackend | None" = None,
    ):
        if isinstance(params_or_modulus, FieldParams):
            params = params_or_modulus
            self.p = params.modulus
            self.name = params.name
            self.two_adicity = params.two_adicity
            self._two_adic_generator = params.two_adic_generator
        else:
            self.p = int(params_or_modulus)
            self.name = f"p{self.p.bit_length()}"
            # Derive the 2-adicity of p-1; the generator is found lazily.
            t, n = 0, self.p - 1
            while n % 2 == 0:
                n //= 2
                t += 1
            self.two_adicity = t
            self._two_adic_generator = 0
        if check_prime and not is_probable_prime(self.p):
            raise ValueError(f"{self.p} is not prime")
        self.backend = resolve_backend(backend, self.p)
        self._root_cache: dict[int, int] = {}

    # -- identities ---------------------------------------------------------

    @classmethod
    def named(cls, name: str) -> "PrimeField":
        return cls(field_params(name), check_prime=False)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    def __repr__(self) -> str:
        return f"PrimeField({self.name}, {self.p.bit_length()} bits)"

    @property
    def bits(self) -> int:
        """Bit length of the modulus."""
        return self.p.bit_length()

    # -- scalar arithmetic ---------------------------------------------------

    def reduce(self, a: int) -> int:
        """Map an arbitrary integer into canonical form ``[0, p)``."""
        return a % self.p

    def add(self, a: int, b: int) -> int:
        """a + b mod p.  Requires canonical operands (see class docs)."""
        s = a + b
        return s - self.p if s >= self.p else s

    def sub(self, a: int, b: int) -> int:
        """a - b mod p.  Requires canonical operands (see class docs)."""
        d = a - b
        return d + self.p if d < 0 else d

    def neg(self, a: int) -> int:
        """-a mod p.  Requires a canonical operand (see class docs)."""
        return self.p - a if a else 0

    def mul(self, a: int, b: int) -> int:
        """a · b mod p (the cost-model parameter f)."""
        return a * b % self.p

    def mul_lazy(self, a: int, b: int) -> int:
        """Multiplication *without* the final modular reduction.

        This is the paper's ``f_lazy`` (§5.1 footnote 8): accumulating
        unreduced products and reducing once is the standard trick in
        the inner-product loops of the prover.  Callers must eventually
        ``reduce`` the accumulated value.
        """
        return a * b

    def square(self, a: int) -> int:
        """a² mod p."""
        return a * a % self.p

    def pow(self, a: int, e: int) -> int:
        """a^e mod p."""
        return pow(a, e, self.p)

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on 0."""
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in prime field")
        return pow(a, -1, self.p)

    def div(self, a: int, b: int) -> int:
        """a / b mod p (the cost-model parameter f_div)."""
        return a * self.inv(b) % self.p

    # -- encodings -----------------------------------------------------------

    def from_signed(self, v: int) -> int:
        """Embed a signed integer, mapping negatives to ``p - |v|``.

        This is how the compiler represents two's-complement-style
        signed values (§5.1: 32-bit signed integer inputs).
        """
        return v % self.p

    def to_signed(self, a: int) -> int:
        """Interpret a field element as a signed integer in ``(-p/2, p/2]``."""
        return a - self.p if a > self.p // 2 else a

    # -- batch helpers -------------------------------------------------------

    def _require_same_length(self, a: Sequence[int], b: Sequence[int]) -> None:
        if len(a) != len(b):
            raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")

    def inner_product(self, a: Sequence[int], b: Sequence[int]) -> int:
        """<a, b> with lazy reduction; the prover's core operation."""
        self._require_same_length(a, b)
        return self.backend.inner_product(a, b)

    def batch_inv(self, values: Sequence[int]) -> list[int]:
        """Montgomery's trick: n inversions for one inversion + 3n muls.

        Used by the verifier's barycentric-weight computation (§A.3),
        where ``f_div``-heavy loops would otherwise dominate.
        """
        return self.backend.batch_inv(values)

    def vec_add(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Componentwise sum (fully reduced)."""
        self._require_same_length(a, b)
        return self.backend.vec_add(a, b)

    def vec_sub(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Componentwise difference (fully reduced)."""
        self._require_same_length(a, b)
        return self.backend.vec_sub(a, b)

    def vec_neg(self, a: Sequence[int]) -> list[int]:
        """Componentwise negation (fully reduced)."""
        return self.backend.vec_neg(a)

    def vec_scale(self, c: int, a: Sequence[int]) -> list[int]:
        """Scalar multiple c·a (fully reduced)."""
        return self.backend.vec_scale(c, a)

    def vec_addmul(self, a: Sequence[int], c: int, b: Sequence[int]) -> list[int]:
        """a + c·b, the FMA shape used when folding queries together."""
        self._require_same_length(a, b)
        return self.backend.vec_addmul(a, c, b)

    def hadamard(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Componentwise product (fully reduced)."""
        self._require_same_length(a, b)
        return self.backend.hadamard(a, b)

    def transform(self, plan, values: list[int], invert: bool = False) -> list[int]:
        """Run an :class:`~repro.poly.plan.NTTPlan` on ``values``.

        The kernel may mutate ``values`` in place; callers pass a
        private copy and use the returned list.  Inputs must be
        canonical field elements (`repro.poly.ntt` guarantees this).
        """
        return self.backend.ntt(plan, values, invert)

    # -- 2-D batch-axis entry points -----------------------------------------
    #
    # The mat_* family operates on a batch × n matrix of rows at once —
    # the shape of a Zaatar batch, where one fixed QAP proves many
    # instances.  Semantics are exactly the corresponding vec_* op
    # applied per row (and mat_batch_inv is batch_inv of the flattened
    # matrix); backends may execute the whole matrix as one array
    # program (see repro.field.backend).

    def _require_same_shape(self, a, b) -> None:
        if len(a) != len(b):
            raise ValueError(f"batch size mismatch: {len(a)} vs {len(b)}")
        for i, (ra, rb) in enumerate(zip(a, b)):
            if len(ra) != len(rb):
                raise ValueError(f"row {i} length mismatch: {len(ra)} vs {len(rb)}")

    def mat_add(self, a, b) -> list[list[int]]:
        """Row-wise componentwise sums (fully reduced)."""
        self._require_same_shape(a, b)
        return self.backend.mat_add(a, b)

    def mat_sub(self, a, b) -> list[list[int]]:
        """Row-wise componentwise differences (fully reduced)."""
        self._require_same_shape(a, b)
        return self.backend.mat_sub(a, b)

    def mat_hadamard(self, a, b) -> list[list[int]]:
        """Row-wise componentwise products (fully reduced)."""
        self._require_same_shape(a, b)
        return self.backend.mat_hadamard(a, b)

    def mat_addmul(self, a, c: int, b) -> list[list[int]]:
        """Row-wise a + c·b with one shared scalar c."""
        self._require_same_shape(a, b)
        return self.backend.mat_addmul(a, c, b)

    def mat_inner_product(self, a, b) -> list[int]:
        """One inner product per row pair."""
        self._require_same_shape(a, b)
        return self.backend.mat_inner_product(a, b)

    def mat_batch_inv(self, rows) -> list[list[int]]:
        """Elementwise inverses of a whole matrix: one real inversion
        (Montgomery's trick over the flattened matrix)."""
        return self.backend.mat_batch_inv(rows)

    def mat_transform(self, plan, rows, invert: bool = False) -> list[list[int]]:
        """Run one :class:`~repro.poly.plan.NTTPlan` over every row.

        All rows must have length ``plan.n``.  Backends share the
        plan's cached twiddle/permutation arrays across rows, so a
        whole batch of transforms is one array program.
        """
        return self.backend.mat_ntt(plan, rows, invert)

    def mat_polymul(self, rows_a, rows_b):
        """Batched per-row polynomial products, or None.

        ``rows_a[i] * rows_b[i]`` as full untrimmed convolutions when
        the backend has a dedicated fast path (the CRT residue-plane
        route for big moduli), else None — callers fall back to
        transforms or per-row ``poly_mul``.
        """
        if len(rows_a) != len(rows_b):
            raise ValueError(
                f"batch size mismatch: {len(rows_a)} vs {len(rows_b)}"
            )
        return self.backend.mat_polymul(rows_a, rows_b)

    # -- randomness ----------------------------------------------------------

    def random_element(self, rng: random.Random) -> int:
        """Uniform draw from [0, p) using a host RNG (tests only)."""
        return rng.randrange(self.p)

    def random_vector(self, n: int, rng: random.Random) -> list[int]:
        """n uniform draws (tests only; protocol code uses FieldPRG)."""
        p = self.p
        return [rng.randrange(p) for _ in range(n)]

    def random_nonzero(self, rng: random.Random) -> int:
        """Uniform draw from [1, p)."""
        return rng.randrange(1, self.p)

    # -- roots of unity -------------------------------------------------------

    def two_adic_generator(self) -> int:
        """Generator of the subgroup of order ``2**two_adicity``."""
        if not self._two_adic_generator:
            if self.two_adicity == 0:
                raise ValueError("field has trivial 2-adicity")
            odd = (self.p - 1) >> self.two_adicity
            for h in range(2, 1000):
                g = pow(h, odd, self.p)
                if pow(g, 1 << (self.two_adicity - 1), self.p) != 1:
                    self._two_adic_generator = g
                    break
            else:  # pragma: no cover - astronomically unlikely
                raise RuntimeError("failed to find 2-adic generator")
        return self._two_adic_generator

    def root_of_unity(self, order: int) -> int:
        """Primitive ``order``-th root of unity; ``order`` a power of two."""
        if order & (order - 1):
            raise ValueError(f"order must be a power of two, got {order}")
        log = order.bit_length() - 1
        if log > self.two_adicity:
            raise ValueError(
                f"field {self.name} supports NTT sizes up to 2^{self.two_adicity}, "
                f"requested 2^{log}"
            )
        cached = self._root_cache.get(order)
        if cached is None:
            g = self.two_adic_generator()
            cached = pow(g, 1 << (self.two_adicity - log), self.p)
            self._root_cache[order] = cached
        return cached


class CheckedPrimeField(PrimeField):
    """A ``PrimeField`` that enforces the canonical-form precondition.

    ``add``/``sub``/``neg`` on the base class silently produce
    out-of-range results when fed non-canonical operands; this subclass
    raises ``ValueError`` instead, on every scalar and batch entry
    point.  It is a debugging and testing tool — hot paths keep the
    unchecked base class — and interoperates with plan caches and
    ``CountingField`` because equality/hashing stay modulus-based.
    """

    __slots__ = ()

    def _require_canonical(self, *operands: int) -> None:
        p = self.p
        for v in operands:
            if not 0 <= v < p:
                raise ValueError(
                    f"non-canonical field operand {v} (expected 0 <= v < {p}); "
                    "reduce() or from_signed() it first"
                )

    def add(self, a: int, b: int) -> int:
        """Checked a + b mod p; raises on non-canonical operands."""
        self._require_canonical(a, b)
        return super().add(a, b)

    def sub(self, a: int, b: int) -> int:
        """Checked a - b mod p; raises on non-canonical operands."""
        self._require_canonical(a, b)
        return super().sub(a, b)

    def neg(self, a: int) -> int:
        """Checked -a mod p; raises on a non-canonical operand."""
        self._require_canonical(a)
        return super().neg(a)

    def mul(self, a: int, b: int) -> int:
        """Checked a · b mod p; raises on non-canonical operands."""
        self._require_canonical(a, b)
        return super().mul(a, b)

    def square(self, a: int) -> int:
        """Checked a² mod p; raises on a non-canonical operand."""
        self._require_canonical(a)
        return super().square(a)

    def inv(self, a: int) -> int:
        """Checked a⁻¹ mod p; raises on a non-canonical operand."""
        self._require_canonical(a)
        return super().inv(a)

    def div(self, a: int, b: int) -> int:
        """Checked a / b mod p; raises on non-canonical operands."""
        self._require_canonical(a, b)
        return super().div(a, b)

    def inner_product(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Checked <a, b>; raises on any non-canonical entry."""
        self._require_canonical(*a)
        self._require_canonical(*b)
        return super().inner_product(a, b)

    def batch_inv(self, values: Sequence[int]) -> list[int]:
        """Checked batch inversion; raises on any non-canonical entry."""
        self._require_canonical(*values)
        return super().batch_inv(values)

    def vec_add(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Checked componentwise sum; raises on any non-canonical entry."""
        self._require_canonical(*a)
        self._require_canonical(*b)
        return super().vec_add(a, b)

    def vec_sub(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Checked componentwise difference; raises on any non-canonical entry."""
        self._require_canonical(*a)
        self._require_canonical(*b)
        return super().vec_sub(a, b)

    def vec_neg(self, a: Sequence[int]) -> list[int]:
        """Checked componentwise negation; raises on any non-canonical entry."""
        self._require_canonical(*a)
        return super().vec_neg(a)

    def vec_scale(self, c: int, a: Sequence[int]) -> list[int]:
        """Checked scalar multiple; raises on any non-canonical entry."""
        self._require_canonical(c, *a)
        return super().vec_scale(c, a)

    def vec_addmul(self, a: Sequence[int], c: int, b: Sequence[int]) -> list[int]:
        """Checked a + c·b; raises on any non-canonical entry."""
        self._require_canonical(c, *a)
        self._require_canonical(*b)
        return super().vec_addmul(a, c, b)

    def hadamard(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Checked componentwise product; raises on any non-canonical entry."""
        self._require_canonical(*a)
        self._require_canonical(*b)
        return super().hadamard(a, b)

    def transform(self, plan, values: list[int], invert: bool = False) -> list[int]:
        """Checked transform; raises on any non-canonical entry."""
        self._require_canonical(*values)
        return super().transform(plan, values, invert)

    def _require_canonical_rows(self, rows) -> None:
        for row in rows:
            self._require_canonical(*row)

    def mat_add(self, a, b) -> list[list[int]]:
        """Checked row-wise sums; raises on any non-canonical entry."""
        self._require_canonical_rows(a)
        self._require_canonical_rows(b)
        return super().mat_add(a, b)

    def mat_sub(self, a, b) -> list[list[int]]:
        """Checked row-wise differences; raises on any non-canonical entry."""
        self._require_canonical_rows(a)
        self._require_canonical_rows(b)
        return super().mat_sub(a, b)

    def mat_hadamard(self, a, b) -> list[list[int]]:
        """Checked row-wise products; raises on any non-canonical entry."""
        self._require_canonical_rows(a)
        self._require_canonical_rows(b)
        return super().mat_hadamard(a, b)

    def mat_addmul(self, a, c: int, b) -> list[list[int]]:
        """Checked row-wise a + c·b; raises on any non-canonical entry."""
        self._require_canonical(c)
        self._require_canonical_rows(a)
        self._require_canonical_rows(b)
        return super().mat_addmul(a, c, b)

    def mat_inner_product(self, a, b) -> list[int]:
        """Checked per-row inner products; raises on any non-canonical entry."""
        self._require_canonical_rows(a)
        self._require_canonical_rows(b)
        return super().mat_inner_product(a, b)

    def mat_batch_inv(self, rows) -> list[list[int]]:
        """Checked matrix inversion; raises on any non-canonical entry."""
        self._require_canonical_rows(rows)
        return super().mat_batch_inv(rows)

    def mat_transform(self, plan, rows, invert: bool = False) -> list[list[int]]:
        """Checked stacked transform; raises on any non-canonical entry."""
        self._require_canonical_rows(rows)
        return super().mat_transform(plan, rows, invert)

    def mat_polymul(self, rows_a, rows_b):
        """Checked batched convolution; raises on any non-canonical entry."""
        self._require_canonical_rows(rows_a)
        self._require_canonical_rows(rows_b)
        return super().mat_polymul(rows_a, rows_b)


def checked_field(base: PrimeField) -> CheckedPrimeField:
    """A checked twin of ``base`` (same modulus, name, NTT structure)."""
    if isinstance(base, CheckedPrimeField):
        return base
    twin = CheckedPrimeField(base.p, check_prime=False, backend=base.backend)
    twin.name = base.name
    twin.two_adicity = base.two_adicity
    twin._two_adic_generator = base._two_adic_generator
    return twin


def elements(field: PrimeField, values: Iterable[int]) -> list[int]:
    """Canonicalize an iterable of ints into field representation."""
    p = field.p
    return [v % p for v in values]
