"""Pluggable vectorized field-arithmetic backends.

Every hot path of the argument system — NTT butterflies, the QAP
prover's H(t) pipeline, linear-PCP query evaluation, commitment dot
products — bottoms out in batch-shaped field arithmetic.  This module
is the kernel-dispatch layer for those shapes: a :class:`PrimeField`
owns one :class:`FieldBackend`, and the vector entry points
(``field.vec_add`` … ``field.inner_product`` … ``field.transform``)
route through it.

Two backends exist:

* :class:`ScalarBackend` — the original pure-Python kernels, always
  available, and the semantic reference every other backend must match
  bit-for-bit (the ``tests/property/test_backend_parity.py`` harness
  enforces this differentially).
* :class:`NumpyBackend` — batched kernels over ``numpy`` arrays,
  selected per modulus:

  - the 64-bit Goldilocks test field gets an exact ``uint64``
    limb-arithmetic kernel (64×64→128-bit products via 32-bit limbs,
    then the classic ``2^64 ≡ 2^32 − 1 (mod p)`` reduction);
  - moduli below ``2^32`` get a direct ``uint64`` kernel (products
    fit without splitting);
  - the big 128/192/220-bit moduli fall back to *chunked* big-int
    kernels (``object``-dtype arrays, processed in fixed-size chunks
    so memory stays bounded) for elementwise ops and dot products,
    and delegate transforms/scans to the scalar kernels.

Selection order: an explicit ``PrimeField(backend=...)`` argument, the
``REPRO_FIELD_BACKEND`` environment variable (``scalar`` / ``numpy`` /
``auto``), then ``auto`` — numpy when importable, scalar otherwise.
Requesting ``numpy`` without numpy installed degrades to scalar with a
single warning, never an error, so the system imports and runs cleanly
on minimal installs.

Beyond the 1-D vector kernels, every backend exposes **2-D batch-axis
kernels** (``mat_add`` … ``mat_ntt`` … ``mat_batch_inv``) operating on
a ``batch × n`` matrix of rows at once — the shape of a Zaatar batch,
where one fixed QAP proves many instances and the H(t) pipeline is
SIMD across the *instance* axis.  The stacked NTT reuses one
:class:`~repro.poly.plan.NTTPlan`'s cached twiddle/permutation arrays
across all rows, and ``mat_batch_inv`` runs a single prefix/suffix
scan over the flattened matrix (one modular inversion for the whole
batch).  For the big 128/192/220-bit moduli, ``mat_polymul`` lifts
batched polynomial products off the object-dtype slow path entirely
via CRT residue planes (see ``repro.field.crt``).

Every backend reports ``backend.<name>.calls`` / ``backend.<name>.elements``
counters to telemetry, attributed to whichever kernel actually ran
(a numpy backend that delegates a tiny vector to its scalar fallback
ticks the scalar counters), so ``repro trace`` can show where the
vector work landed.  The 2-D entry points additionally tick
``backend.<name>.batch_calls`` / ``backend.<name>.batch_rows`` so
batched work is distinguishable from an equal volume of 1-D calls.
When a metrics registry is bound (prover-server sessions — see
``repro.telemetry.metrics``), the same names tick live counters there
too, giving ``repro top`` a per-backend element throughput series.
See docs/PERFORMANCE.md for the exactness argument and measured
speedups.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Sequence

from .. import telemetry
from ..telemetry import metrics as _metrics

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

#: environment variable consulted when ``PrimeField`` gets no explicit backend
BACKEND_ENV_VAR = "REPRO_FIELD_BACKEND"

#: the Goldilocks modulus, whose reduction the uint64 kernel hardcodes
_GOLDILOCKS_P = 2**64 - 2**32 + 1


class _ScalarFallback(Exception):
    """Internal: a numpy kernel declining an input it cannot handle
    exactly (non-canonical or unconvertible values); the dispatching
    backend retries on the scalar kernel, which is tolerant."""


def available_backends() -> list[str]:
    """Names accepted by :func:`resolve_backend` on this install."""
    return ["scalar", "numpy"] if HAVE_NUMPY else ["scalar"]


class FieldBackend:
    """One field's vector-kernel set.

    All methods take and return plain Python ``int`` lists in the same
    canonical representation ``PrimeField`` uses; implementations must
    be *bit-identical* to :class:`ScalarBackend` on canonical inputs
    (every value is a fully reduced element of [0, p), so any exact
    algorithm yields the same integers).  ``ntt`` may mutate the list
    it is given; callers pass private copies.
    """

    name = "?"

    def __init__(self, p: int):
        self.p = p
        self._calls_key = f"backend.{self.name}.calls"
        self._elems_key = f"backend.{self.name}.elements"
        self._batch_calls_key = f"backend.{self.name}.batch_calls"
        self._batch_rows_key = f"backend.{self.name}.batch_rows"

    def _tick(self, n: int) -> None:
        telemetry.count(self._calls_key)
        telemetry.count(self._elems_key, n)
        registry = _metrics.active()
        if registry is not None:
            registry.inc(self._calls_key)
            registry.inc(self._elems_key, n)

    def _tick_batch(self, rows: int, elems: int) -> None:
        telemetry.count(self._batch_calls_key)
        telemetry.count(self._batch_rows_key, rows)
        telemetry.count(self._elems_key, elems)
        registry = _metrics.active()
        if registry is not None:
            registry.inc(self._batch_calls_key)
            registry.inc(self._batch_rows_key, rows)
            registry.inc(self._elems_key, elems)

    def mat_polymul(self, rows_a, rows_b):
        """Batched per-row polynomial products, or None.

        Returns ``rows_a[i] * rows_b[i]`` (full, untrimmed convolution
        of length ``len(a_i) + len(b_i) - 1``) for every row when this
        backend has a fast path for the shape, else ``None`` — callers
        fall back to the transform/poly_mul route.  Inputs must be
        canonical.  The base implementation has no fast path.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(p={self.p:#x})"


class ScalarBackend(FieldBackend):
    """The pure-Python reference kernels (the seed implementations).

    Tolerant of non-canonical operands wherever the original code was
    (everything funnels through ``% p``), which is also why it is the
    universal fallback.
    """

    name = "scalar"

    def vec_add(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Componentwise sum via ``% p`` list comprehension."""
        self._tick(len(a))
        p = self.p
        return [(x + y) % p for x, y in zip(a, b)]

    def vec_sub(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Componentwise difference via ``% p`` list comprehension."""
        self._tick(len(a))
        p = self.p
        return [(x - y) % p for x, y in zip(a, b)]

    def vec_neg(self, a: Sequence[int]) -> list[int]:
        """Componentwise negation via ``% p`` list comprehension."""
        self._tick(len(a))
        p = self.p
        return [(-x) % p for x in a]

    def vec_scale(self, c: int, a: Sequence[int]) -> list[int]:
        """Scalar multiple c·a via ``% p`` list comprehension."""
        self._tick(len(a))
        p = self.p
        return [c * x % p for x in a]

    def vec_addmul(self, a: Sequence[int], c: int, b: Sequence[int]) -> list[int]:
        """a + c·b via ``% p`` list comprehension."""
        self._tick(len(a))
        p = self.p
        return [(x + c * y) % p for x, y in zip(a, b)]

    def hadamard(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Componentwise product via ``% p`` list comprehension."""
        self._tick(len(a))
        p = self.p
        return [x * y % p for x, y in zip(a, b)]

    def inner_product(self, a: Sequence[int], b: Sequence[int]) -> int:
        """<a, b> with lazy reduction (one ``%`` at the end)."""
        self._tick(len(a))
        acc = 0
        for x, y in zip(a, b):
            acc += x * y
        return acc % self.p

    def batch_inv(self, values: Sequence[int]) -> list[int]:
        """Montgomery's trick: one inversion + 3n sequential muls."""
        self._tick(len(values))
        p = self.p
        n = len(values)
        prefix = [1] * (n + 1)
        for i, v in enumerate(values):
            # v ≡ 0 (mod p) must fail the same way literal 0 does, even
            # when v is a non-canonical multiple of p
            if v % p == 0:
                raise ZeroDivisionError("batch_inv of 0")
            prefix[i + 1] = prefix[i] * v % p
        inv_all = pow(prefix[n], -1, p)
        out = [0] * n
        for i in range(n - 1, -1, -1):
            out[i] = prefix[i] * inv_all % p
            inv_all = inv_all * values[i] % p
        return out

    def ntt(self, plan, a: list[int], invert: bool) -> list[int]:
        """Run the plan's pure-Python in-place butterflies."""
        self._tick(plan.n)
        return plan.inverse(a) if invert else plan.forward(a)

    # -- 2-D batch-axis kernels (the semantic reference) -----------------------
    #
    # Each mat_* result equals the corresponding vec_* applied per row
    # (and mat_batch_inv equals batch_inv of the flattened matrix,
    # reshaped); the numpy backend's 2-D kernels must match these
    # bit-for-bit on canonical inputs.

    def _mat_elems(self, rows) -> int:
        return sum(len(r) for r in rows)

    def mat_add(self, a, b) -> list[list[int]]:
        """Row-wise componentwise sum."""
        self._tick_batch(len(a), self._mat_elems(a))
        p = self.p
        return [[(x + y) % p for x, y in zip(ra, rb)] for ra, rb in zip(a, b)]

    def mat_sub(self, a, b) -> list[list[int]]:
        """Row-wise componentwise difference."""
        self._tick_batch(len(a), self._mat_elems(a))
        p = self.p
        return [[(x - y) % p for x, y in zip(ra, rb)] for ra, rb in zip(a, b)]

    def mat_hadamard(self, a, b) -> list[list[int]]:
        """Row-wise componentwise product."""
        self._tick_batch(len(a), self._mat_elems(a))
        p = self.p
        return [[x * y % p for x, y in zip(ra, rb)] for ra, rb in zip(a, b)]

    def mat_addmul(self, a, c, b) -> list[list[int]]:
        """Row-wise a + c·b."""
        self._tick_batch(len(a), self._mat_elems(a))
        p = self.p
        return [[(x + c * y) % p for x, y in zip(ra, rb)] for ra, rb in zip(a, b)]

    def mat_inner_product(self, a, b) -> list[int]:
        """One lazily-reduced dot product per row."""
        self._tick_batch(len(a), self._mat_elems(a))
        p = self.p
        out = []
        for ra, rb in zip(a, b):
            acc = 0
            for x, y in zip(ra, rb):
                acc += x * y
            out.append(acc % p)
        return out

    def mat_batch_inv(self, rows) -> list[list[int]]:
        """Montgomery inversion over the flattened matrix: ONE real
        inversion for the whole batch, then reshape."""
        self._tick_batch(len(rows), self._mat_elems(rows))
        flat: list[int] = []
        for row in rows:
            flat.extend(row)
        p = self.p
        n = len(flat)
        prefix = [1] * (n + 1)
        for i, v in enumerate(flat):
            if v % p == 0:
                raise ZeroDivisionError("batch_inv of 0")
            prefix[i + 1] = prefix[i] * v % p
        inv_all = pow(prefix[n], -1, p)
        inv_flat = [0] * n
        for i in range(n - 1, -1, -1):
            inv_flat[i] = prefix[i] * inv_all % p
            inv_all = inv_all * flat[i] % p
        out: list[list[int]] = []
        pos = 0
        for row in rows:
            out.append(inv_flat[pos : pos + len(row)])
            pos += len(row)
        return out

    def mat_ntt(self, plan, rows, invert: bool) -> list[list[int]]:
        """Per-row plan butterflies (rows transformed independently)."""
        self._tick_batch(len(rows), len(rows) * plan.n)
        if invert:
            return [plan.inverse(list(row)) for row in rows]
        return [plan.forward(list(row)) for row in rows]


# -- numpy kernels --------------------------------------------------------------


class _U64KernelBase:
    """Shared structure of the exact ``uint64`` kernels.

    Subclasses supply ``mulmod``/``addmod``/``submod`` over uint64
    arrays; the butterfly schedule, reduction trees, and the prefix/
    suffix scans of Montgomery batch inversion live here.  Everything
    is exact integer arithmetic, so results are the same canonical
    field elements the scalar kernels produce.
    """

    supports_ntt = True
    supports_batch_inv = True
    supports_mat_ntt = True
    supports_mat_batch_inv = True

    def __init__(self, p: int):
        self.p = p
        self.pu = _np.uint64(p)
        self.m32 = _np.uint64(0xFFFFFFFF)
        self.s32 = _np.uint64(32)

    # subclasses: mulmod(a, b), addmod(u, v), submod(u, v)

    def _load(self, values: Sequence[int], *, canonical: bool):
        """List → uint64 array; refuse anything the kernel can't do exactly."""
        try:
            arr = _np.asarray(values, dtype=_np.uint64)
        except (OverflowError, TypeError, ValueError) as exc:
            raise _ScalarFallback() from exc
        if canonical and arr.size and bool((arr >= self.pu).any()):
            raise _ScalarFallback()
        return arr

    def _scalar_operand(self, c: int):
        if not 0 <= c < 2**64:
            raise _ScalarFallback()
        return _np.uint64(c)

    def _canon(self, arr):
        """One conditional subtraction, [0, 2p) → [0, p).

        Every loadable uint64 value lies below 2p for these kernels
        (Goldilocks has 2p > 2^64; the small-modulus kernel only loads
        canonical values), so this fully canonicalizes inputs that are
        ≡ 0 (mod p) without being the literal zero — the case the zero
        guard in :meth:`batch_inv` must catch.
        """
        return arr - self.pu * (arr >= self.pu).astype(_np.uint64)

    def _load_mat(self, rows, *, canonical: bool):
        """List of equal-length rows → (batch × n) uint64 array."""
        try:
            arr = _np.asarray(rows, dtype=_np.uint64)
        except (OverflowError, TypeError, ValueError) as exc:
            raise _ScalarFallback() from exc
        if arr.ndim != 2:
            raise _ScalarFallback()
        if canonical and arr.size and bool((arr >= self.pu).any()):
            raise _ScalarFallback()
        return arr

    # -- elementwise ----------------------------------------------------------

    def vec_add(self, a, b):
        return self.addmod(self._load(a, canonical=True), self._load(b, canonical=True)).tolist()

    def vec_sub(self, a, b):
        return self.submod(self._load(a, canonical=True), self._load(b, canonical=True)).tolist()

    def vec_neg(self, a):
        arr = self._load(a, canonical=True)
        return (self.pu * (arr > 0).astype(_np.uint64) - arr).tolist()

    def vec_scale(self, c, a):
        return self.mulmod(self._load(a, canonical=False), self._scalar_operand(c)).tolist()

    def vec_addmul(self, a, c, b):
        prod = self.mulmod(self._load(b, canonical=False), self._scalar_operand(c))
        return self.addmod(self._load(a, canonical=True), prod).tolist()

    def hadamard(self, a, b):
        return self.mulmod(self._load(a, canonical=False), self._load(b, canonical=False)).tolist()

    # -- reductions -----------------------------------------------------------

    def _split_sum(self, x) -> int:
        """Exact Σxᵢ of a uint64 array: sum the 32-bit halves separately
        (each stays below 2^64 for any realistic length) and recombine
        as a Python int."""
        return (int((x >> self.s32).sum()) << 32) + int((x & self.m32).sum())

    def inner_product(self, a, b) -> int:
        av = self._load(a, canonical=False)
        bv = self._load(b, canonical=False)
        if av.size == 0:
            return 0
        # Σ a·b from the four 32×32 partial-product sums, recombined
        # exactly in Python — the vectorized version of lazy reduction.
        a0 = av & self.m32
        a1 = av >> self.s32
        b0 = bv & self.m32
        b1 = bv >> self.s32
        total = (
            self._split_sum(a0 * b0)
            + ((self._split_sum(a0 * b1) + self._split_sum(a1 * b0)) << 32)
            + (self._split_sum(a1 * b1) << 64)
        )
        return total % self.p

    def _scan_products(self, arr):
        """Inclusive prefix products mod p (Hillis-Steele doubling scan)."""
        out = arr.copy()
        shift = 1
        n = out.size
        while shift < n:
            out[shift:] = self.mulmod(out[shift:], out[:-shift])
            shift <<= 1
        return out

    def _inv_scan(self, arr):
        """Vectorized Montgomery inversion of a 1-D canonical array."""
        n = arr.size
        inclusive = self._scan_products(arr)
        total = int(inclusive[-1])
        inv_total = _np.uint64(pow(total, -1, self.p))
        # exclusive prefix / suffix products
        prefix = _np.empty_like(arr)
        prefix[0] = 1
        prefix[1:] = inclusive[:-1]
        suffix = _np.empty_like(arr)
        suffix[-1] = 1
        if n > 1:
            suffix[:-1] = self._scan_products(arr[::-1])[:-1][::-1]
        return self.mulmod(self.mulmod(prefix, suffix), inv_total)

    def batch_inv(self, values):
        # canonicalize BEFORE the zero guard: an input ≡ 0 (mod p) that
        # is not the literal 0 (e.g. p itself, for Goldilocks) must
        # raise ZeroDivisionError exactly like the scalar kernel does
        arr = self._canon(self._load(values, canonical=False))
        if bool((arr == 0).any()):
            raise ZeroDivisionError("batch_inv of 0")
        return self._inv_scan(arr).tolist()

    # -- transforms -----------------------------------------------------------

    def _scratch(self, plan):
        scratch = plan.np_scratch.get("u64")
        if scratch is None:
            perm = _np.arange(plan.n)
            for i, j in plan.swaps:
                perm[i], perm[j] = perm[j], perm[i]
            scratch = {
                "perm": perm,
                "fwd": [_np.asarray(t, dtype=_np.uint64) for t in plan.fwd],
                "inv_head": [_np.asarray(t, dtype=_np.uint64) for t in plan._inv_head],
                "inv_last": _np.asarray(plan._inv_last, dtype=_np.uint64),
                "n_inv": _np.uint64(plan.n_inv),
            }
            # build fully, then publish: setdefault keeps the first
            # complete dict when two sessions race, so no reader can
            # ever observe a partially-populated scratch
            scratch = plan.np_scratch.setdefault("u64", scratch)
        return scratch

    def _butterflies(self, a, tables) -> None:
        for tw in tables:
            h = tw.size
            view = a.reshape(-1, 2 * h)
            u = view[:, :h].copy()
            v = self.mulmod(view[:, h:], tw)
            view[:, :h] = self.addmod(u, v)
            view[:, h:] = self.submod(u, v)

    def _transform(self, plan, a, invert: bool):
        """Plan butterflies over the last axis of ``a`` (a 1-D vector or
        a 2-D row-stack), in place.  ``_butterflies``'s
        ``reshape(-1, 2h)`` never mixes rows because every row length is
        a multiple of ``2h`` at every level."""
        scratch = self._scratch(plan)
        if not invert:
            self._butterflies(a, scratch["fwd"])
        else:
            self._butterflies(a, scratch["inv_head"])
            half = plan.n >> 1
            u = self.mulmod(a[..., :half], scratch["n_inv"])
            v = self.mulmod(a[..., half:], scratch["inv_last"])
            a[..., :half] = self.addmod(u, v)
            a[..., half:] = self.submod(u, v)
        return a

    def ntt(self, plan, values, invert: bool) -> list[int]:
        a = self._load(values, canonical=True)[self._scratch(plan)["perm"]]
        return self._transform(plan, a, invert).tolist()

    # -- 2-D batch-axis kernels -----------------------------------------------

    def mat_add(self, a, b):
        return self.addmod(
            self._load_mat(a, canonical=True), self._load_mat(b, canonical=True)
        ).tolist()

    def mat_sub(self, a, b):
        return self.submod(
            self._load_mat(a, canonical=True), self._load_mat(b, canonical=True)
        ).tolist()

    def mat_hadamard(self, a, b):
        return self.mulmod(
            self._load_mat(a, canonical=False), self._load_mat(b, canonical=False)
        ).tolist()

    def mat_addmul(self, a, c, b):
        prod = self.mulmod(self._load_mat(b, canonical=False), self._scalar_operand(c))
        return self.addmod(self._load_mat(a, canonical=True), prod).tolist()

    def _row_split_sums(self, x) -> list[int]:
        """Exact per-row Σ of a 2-D uint64 array, as Python ints: the
        32-bit halves are summed separately (each stays below 2^64 for
        any realistic row length) and recombined without overflow."""
        hi = (x >> self.s32).sum(axis=1)
        lo = (x & self.m32).sum(axis=1)
        return [(h << 32) + l for h, l in zip(hi.tolist(), lo.tolist())]

    def mat_inner_product(self, a, b) -> list[int]:
        av = self._load_mat(a, canonical=False)
        bv = self._load_mat(b, canonical=False)
        if av.shape[1] == 0:
            return [0] * av.shape[0]
        # per-row version of the four 32×32 partial-product sums
        a0 = av & self.m32
        a1 = av >> self.s32
        b0 = bv & self.m32
        b1 = bv >> self.s32
        s00 = self._row_split_sums(a0 * b0)
        s01 = self._row_split_sums(a0 * b1)
        s10 = self._row_split_sums(a1 * b0)
        s11 = self._row_split_sums(a1 * b1)
        p = self.p
        return [
            (x00 + ((x01 + x10) << 32) + (x11 << 64)) % p
            for x00, x01, x10, x11 in zip(s00, s01, s10, s11)
        ]

    def mat_batch_inv(self, rows):
        # one flattened prefix/suffix scan — ONE modular inversion for
        # the whole batch — then reshape back to rows
        arr = self._canon(self._load_mat(rows, canonical=False))
        if bool((arr == 0).any()):
            raise ZeroDivisionError("batch_inv of 0")
        return self._inv_scan(arr.reshape(-1)).reshape(arr.shape).tolist()

    def mat_ntt(self, plan, rows, invert: bool):
        scratch = self._scratch(plan)
        arr = self._load_mat(rows, canonical=True)
        if arr.shape[1] != plan.n:
            raise _ScalarFallback()
        # ascontiguousarray: column fancy-indexing yields a non-C-order
        # array, and _butterflies' reshape must be a view (its writes
        # are in place)
        a = _np.ascontiguousarray(arr[:, scratch["perm"]])
        return self._transform(plan, a, invert).tolist()


class _GoldilocksKernel(_U64KernelBase):
    """Exact uint64 kernel for p = 2^64 − 2^32 + 1.

    Products are formed as full 128-bit integers from 32-bit limbs
    (every partial product fits a uint64), then reduced with the
    field's defining identities ``2^64 ≡ 2^32 − 1`` and
    ``2^96 ≡ −1 (mod p)``.  ``mulmod`` is exact for *any* uint64
    inputs; the compare-based ``addmod``/``submod`` require canonical
    operands, which ``_load(canonical=True)`` enforces (falling back
    to scalar otherwise).  The parity suite fuzzes this against pure
    Python across the edge values 0, 1, p−1.
    """

    _EPS = None  # set in __init__ (numpy may be absent at class-creation time)

    def __init__(self, p: int):
        assert p == _GOLDILOCKS_P
        super().__init__(p)
        self.eps = _np.uint64(2**32 - 1)

    def mulmod(self, a, b):
        m32, s32 = self.m32, self.s32
        a0 = a & m32
        a1 = a >> s32
        b0 = b & m32
        b1 = b >> s32
        ll = a0 * b0
        # standard 64×64 → (hi, lo) recombination; no partial overflows
        mid = a0 * b1 + (ll >> s32)
        mid2 = a1 * b0 + (mid & m32)
        hi = a1 * b1 + (mid >> s32) + (mid2 >> s32)
        lo = (mid2 << s32) | (ll & m32)
        # reduce hi·2^64 + lo:  2^64 ≡ 2^32 − 1,  2^96 ≡ −1 (mod p)
        hi1 = hi >> s32
        hi0 = hi & m32
        t0 = lo - hi1 - (self.eps * (lo < hi1).astype(_np.uint64))
        t1 = hi0 * self.eps
        res = t0 + t1
        res = res + self.eps * (res < t1).astype(_np.uint64)
        return res - self.pu * (res >= self.pu).astype(_np.uint64)

    def addmod(self, u, v):
        # u + v − p, then add p back where the true sum was below p
        s = u + (v - self.pu)
        return s + self.pu * (u < (self.pu - v)).astype(_np.uint64)

    def submod(self, u, v):
        return u - v + self.pu * (u < v).astype(_np.uint64)


class _Small64Kernel(_U64KernelBase):
    """Direct uint64 kernel for moduli below 2^32: products fit as-is."""

    def __init__(self, p: int):
        assert p < 2**32
        super().__init__(p)

    def _load(self, values, *, canonical: bool):
        # products only stay below 2^64 for canonical operands, so
        # *every* op needs the canonical check here
        return super()._load(values, canonical=True)

    def _load_mat(self, rows, *, canonical: bool):
        return super()._load_mat(rows, canonical=True)

    def _scalar_operand(self, c: int):
        if not 0 <= c < self.p:
            raise _ScalarFallback()
        return _np.uint64(c)

    def mulmod(self, a, b):
        return (a * b) % self.pu

    def addmod(self, u, v):
        return (u + v) % self.pu

    def submod(self, u, v):
        return (u + (self.pu - v)) % self.pu

    def inner_product(self, a, b) -> int:
        av = self._load(a, canonical=True)
        bv = self._load(b, canonical=True)
        if av.size == 0:
            return 0
        # both operands below 2^32, so the plain product never wraps
        return self._split_sum(av * bv) % self.p

    def mat_inner_product(self, a, b) -> list[int]:
        av = self._load_mat(a, canonical=True)
        bv = self._load_mat(b, canonical=True)
        if av.shape[1] == 0:
            return [0] * av.shape[0]
        return [s % self.p for s in self._row_split_sums(av * bv)]


class _ObjectKernel:
    """Chunked big-int kernel for the 128/192/220-bit moduli.

    ``object``-dtype arrays keep the per-element dispatch loop in C
    while the arithmetic stays arbitrary-precision Python ints, and
    fixed-size chunks bound the transient allocation on long vectors.
    The (inherently sequential) 1-D batch-inversion scan stays on the
    scalar kernels — for big moduli the big-int multiply dominates and
    vectorizing the loop shell buys little there.  Transforms run the
    plan's butterfly schedule over object arrays (cached object-dtype
    twiddles in ``plan.np_scratch["obj"]``): one C-level dispatch per
    level instead of one per butterfly, which is what makes the *2-D*
    stacked transform worthwhile for a whole batch of rows at once.
    """

    supports_ntt = True
    supports_batch_inv = False
    supports_mat_ntt = True
    supports_mat_batch_inv = False

    #: elements per chunk; big-int entries make huge arrays expensive
    CHUNK = 8192

    def __init__(self, p: int):
        self.p = p

    def _chunked(self, n: int):
        for start in range(0, n, self.CHUNK):
            yield start, min(start + self.CHUNK, n)

    def _binary(self, a, b, op) -> list[int]:
        out: list[int] = []
        for lo, hi in self._chunked(len(a)):
            xa = _np.asarray(a[lo:hi], dtype=object)
            xb = _np.asarray(b[lo:hi], dtype=object)
            out.extend(op(xa, xb) % self.p)
        return out

    def vec_add(self, a, b):
        return self._binary(a, b, lambda x, y: x + y)

    def vec_sub(self, a, b):
        return self._binary(a, b, lambda x, y: x - y)

    def vec_neg(self, a):
        out: list[int] = []
        for lo, hi in self._chunked(len(a)):
            out.extend((-_np.asarray(a[lo:hi], dtype=object)) % self.p)
        return out

    def vec_scale(self, c, a):
        out: list[int] = []
        for lo, hi in self._chunked(len(a)):
            out.extend((_np.asarray(a[lo:hi], dtype=object) * c) % self.p)
        return out

    def vec_addmul(self, a, c, b):
        return self._binary(a, b, lambda x, y: x + y * c)

    def hadamard(self, a, b):
        return self._binary(a, b, lambda x, y: x * y)

    def inner_product(self, a, b) -> int:
        acc = 0
        for lo, hi in self._chunked(len(a)):
            xa = _np.asarray(a[lo:hi], dtype=object)
            xb = _np.asarray(b[lo:hi], dtype=object)
            acc += int((xa * xb).sum())
        return acc % self.p

    # -- transforms -----------------------------------------------------------

    def _scratch(self, plan):
        scratch = plan.np_scratch.get("obj")
        if scratch is None:
            perm = _np.arange(plan.n)
            for i, j in plan.swaps:
                perm[i], perm[j] = perm[j], perm[i]
            scratch = {
                "perm": perm,
                "fwd": [_np.asarray(t, dtype=object) for t in plan.fwd],
                "inv_head": [_np.asarray(t, dtype=object) for t in plan._inv_head],
                "inv_last": _np.asarray(plan._inv_last, dtype=object),
                "n_inv": plan.n_inv,
            }
            # build fully, then publish (same no-torn-reads discipline
            # as the uint64 scratch)
            scratch = plan.np_scratch.setdefault("obj", scratch)
        return scratch

    def _butterflies(self, a, tables) -> None:
        # same level order and formulas as plan.forward/inverse, so the
        # resulting canonical integers are bit-identical to the scalar
        # butterflies; reshape(-1, 2h) never mixes rows (row length is
        # a multiple of 2h at every level)
        p = self.p
        for tw in tables:
            h = tw.size
            view = a.reshape(-1, 2 * h)
            u = view[:, :h].copy()
            v = (view[:, h:] * tw) % p
            view[:, :h] = (u + v) % p
            view[:, h:] = (u - v) % p

    def _transform(self, plan, a, invert: bool):
        scratch = self._scratch(plan)
        if not invert:
            self._butterflies(a, scratch["fwd"])
        else:
            self._butterflies(a, scratch["inv_head"])
            half = plan.n >> 1
            p = self.p
            u = (a[..., :half] * scratch["n_inv"]) % p
            v = (a[..., half:] * scratch["inv_last"]) % p
            a[..., :half] = (u + v) % p
            a[..., half:] = (u - v) % p
        return a

    def ntt(self, plan, values, invert: bool) -> list[int]:
        a = _np.asarray(values, dtype=object)[self._scratch(plan)["perm"]]
        return self._transform(plan, a, invert).tolist()

    # -- 2-D batch-axis kernels -----------------------------------------------

    def _rows_per_chunk(self, n: int) -> int:
        return max(1, self.CHUNK // max(1, n))

    def _mat_binary(self, a, b, op) -> list[list[int]]:
        out: list[list[int]] = []
        step = self._rows_per_chunk(len(a[0]) if a else 0)
        for lo in range(0, len(a), step):
            xa = _np.asarray(a[lo : lo + step], dtype=object)
            xb = _np.asarray(b[lo : lo + step], dtype=object)
            out.extend((op(xa, xb) % self.p).tolist())
        return out

    def mat_add(self, a, b):
        return self._mat_binary(a, b, lambda x, y: x + y)

    def mat_sub(self, a, b):
        return self._mat_binary(a, b, lambda x, y: x - y)

    def mat_hadamard(self, a, b):
        return self._mat_binary(a, b, lambda x, y: x * y)

    def mat_addmul(self, a, c, b):
        return self._mat_binary(a, b, lambda x, y: x + y * c)

    def mat_inner_product(self, a, b) -> list[int]:
        out: list[int] = []
        step = self._rows_per_chunk(len(a[0]) if a else 0)
        for lo in range(0, len(a), step):
            xa = _np.asarray(a[lo : lo + step], dtype=object)
            xb = _np.asarray(b[lo : lo + step], dtype=object)
            out.extend(int(s) % self.p for s in (xa * xb).sum(axis=1))
        return out

    def mat_ntt(self, plan, rows, invert: bool):
        scratch = self._scratch(plan)
        if any(len(row) != plan.n for row in rows):
            raise _ScalarFallback()
        arr = _np.empty((len(rows), plan.n), dtype=object)
        for i, row in enumerate(rows):
            arr[i] = row
        # C-order required: _butterflies' reshape must stay a view
        a = _np.ascontiguousarray(arr[:, scratch["perm"]])
        return self._transform(plan, a, invert).tolist()


def _kernel_for(p: int):
    if p == _GOLDILOCKS_P:
        return _GoldilocksKernel(p)
    if p < 2**32:
        return _Small64Kernel(p)
    return _ObjectKernel(p)


class NumpyBackend(FieldBackend):
    """Batched kernels over numpy arrays, per-modulus (see module docs).

    Small vectors delegate to the scalar kernels (numpy call overhead
    would dominate), as does any input the exact kernels decline
    (non-canonical or unconvertible values) — so results match the
    scalar backend on every input the scalar backend accepts.
    """

    name = "numpy"

    #: below this many elements the scalar kernels win
    MIN_VECTOR = 32
    #: below this transform size the scalar butterflies win
    MIN_NTT = 64

    def __init__(self, p: int):
        if not HAVE_NUMPY:
            raise RuntimeError("NumpyBackend requires numpy")
        super().__init__(p)
        self.scalar = ScalarBackend(p)
        self.kernel = _kernel_for(p)

    def _dispatch(self, n: int, kernel_op, scalar_op):
        if n < self.MIN_VECTOR:
            return scalar_op()
        try:
            result = kernel_op()
        except _ScalarFallback:
            return scalar_op()
        self._tick(n)
        return result

    def vec_add(self, a, b):
        """Componentwise sum on the per-modulus kernel."""
        return self._dispatch(
            len(a), lambda: self.kernel.vec_add(a, b), lambda: self.scalar.vec_add(a, b)
        )

    def vec_sub(self, a, b):
        """Componentwise difference on the per-modulus kernel."""
        return self._dispatch(
            len(a), lambda: self.kernel.vec_sub(a, b), lambda: self.scalar.vec_sub(a, b)
        )

    def vec_neg(self, a):
        """Componentwise negation on the per-modulus kernel."""
        return self._dispatch(
            len(a), lambda: self.kernel.vec_neg(a), lambda: self.scalar.vec_neg(a)
        )

    def vec_scale(self, c, a):
        """Scalar multiple c·a on the per-modulus kernel."""
        return self._dispatch(
            len(a), lambda: self.kernel.vec_scale(c, a), lambda: self.scalar.vec_scale(c, a)
        )

    def vec_addmul(self, a, c, b):
        """a + c·b on the per-modulus kernel."""
        return self._dispatch(
            len(a),
            lambda: self.kernel.vec_addmul(a, c, b),
            lambda: self.scalar.vec_addmul(a, c, b),
        )

    def hadamard(self, a, b):
        """Componentwise product on the per-modulus kernel."""
        return self._dispatch(
            len(a), lambda: self.kernel.hadamard(a, b), lambda: self.scalar.hadamard(a, b)
        )

    def inner_product(self, a, b):
        """<a, b> via limb-split partial-product sums."""
        return self._dispatch(
            len(a),
            lambda: self.kernel.inner_product(a, b),
            lambda: self.scalar.inner_product(a, b),
        )

    def batch_inv(self, values):
        """Montgomery inversion via prefix/suffix product scans."""
        if not self.kernel.supports_batch_inv or len(values) < self.MIN_VECTOR:
            return self.scalar.batch_inv(values)
        try:
            result = self.kernel.batch_inv(values)
        except _ScalarFallback:
            return self.scalar.batch_inv(values)
        self._tick(len(values))
        return result

    def ntt(self, plan, a, invert):
        """Vectorized butterfly levels over the plan's cached arrays."""
        if not self.kernel.supports_ntt or plan.n < self.MIN_NTT:
            return self.scalar.ntt(plan, a, invert)
        try:
            result = self.kernel.ntt(plan, a, invert)
        except _ScalarFallback:
            return self.scalar.ntt(plan, a, invert)
        self._tick(plan.n)
        return result

    # -- 2-D batch-axis entry points ------------------------------------------

    @staticmethod
    def _rect(rows):
        """Total element count when all rows have equal length, else None
        (the numpy kernels need a rectangular matrix; the scalar
        reference handles anything)."""
        if not rows:
            return 0
        n = len(rows[0])
        for row in rows:
            if len(row) != n:
                return None
        return n * len(rows)

    def _dispatch_mat(self, rows, kernel_op, scalar_op):
        elems = self._rect(rows)
        if elems is None or elems < self.MIN_VECTOR:
            return scalar_op()
        try:
            result = kernel_op()
        except _ScalarFallback:
            return scalar_op()
        self._tick_batch(len(rows), elems)
        return result

    def mat_add(self, a, b):
        """Row-wise sums in one 2-D kernel call."""
        return self._dispatch_mat(
            a, lambda: self.kernel.mat_add(a, b), lambda: self.scalar.mat_add(a, b)
        )

    def mat_sub(self, a, b):
        """Row-wise differences in one 2-D kernel call."""
        return self._dispatch_mat(
            a, lambda: self.kernel.mat_sub(a, b), lambda: self.scalar.mat_sub(a, b)
        )

    def mat_hadamard(self, a, b):
        """Row-wise componentwise products in one 2-D kernel call."""
        return self._dispatch_mat(
            a,
            lambda: self.kernel.mat_hadamard(a, b),
            lambda: self.scalar.mat_hadamard(a, b),
        )

    def mat_addmul(self, a, c, b):
        """Row-wise a + c·b in one 2-D kernel call."""
        return self._dispatch_mat(
            a,
            lambda: self.kernel.mat_addmul(a, c, b),
            lambda: self.scalar.mat_addmul(a, c, b),
        )

    def mat_inner_product(self, a, b):
        """One dot product per row, via per-row limb-split sums."""
        return self._dispatch_mat(
            a,
            lambda: self.kernel.mat_inner_product(a, b),
            lambda: self.scalar.mat_inner_product(a, b),
        )

    def mat_batch_inv(self, rows):
        """One flattened Montgomery scan for the whole matrix."""
        elems = self._rect(rows)
        if (
            elems is None
            or elems < self.MIN_VECTOR
            or not self.kernel.supports_mat_batch_inv
        ):
            return self.scalar.mat_batch_inv(rows)
        try:
            result = self.kernel.mat_batch_inv(rows)
        except _ScalarFallback:
            return self.scalar.mat_batch_inv(rows)
        self._tick_batch(len(rows), elems)
        return result

    def mat_ntt(self, plan, rows, invert):
        """Stacked transforms sharing one plan's cached twiddles."""
        if not rows or not self.kernel.supports_mat_ntt or plan.n < self.MIN_NTT:
            return self.scalar.mat_ntt(plan, rows, invert)
        try:
            result = self.kernel.mat_ntt(plan, rows, invert)
        except _ScalarFallback:
            return self.scalar.mat_ntt(plan, rows, invert)
        self._tick_batch(len(rows), len(rows) * plan.n)
        return result

    def mat_polymul(self, rows_a, rows_b):
        """CRT residue-plane batched convolution for the big moduli.

        Splits each row into k uint64 residue planes modulo 31-bit NTT
        primes, convolves every plane with stacked uint64 transforms,
        and reconstructs exact integer convolutions via Garner/CRT —
        bit-identical to per-row ``poly_mul`` (see ``repro.field.crt``).
        Returns None (no fast path) for moduli that already have native
        uint64 transforms, or shapes the CRT path cannot cover.
        """
        if not isinstance(self.kernel, _ObjectKernel):
            return None
        from .crt import mat_polymul_crt

        result = mat_polymul_crt(self.p, rows_a, rows_b)
        if result is not None:
            elems = sum(len(r) for r in rows_a) + sum(len(r) for r in rows_b)
            self._tick_batch(len(rows_a), elems)
        return result


# -- resolution -----------------------------------------------------------------

_RESOLVE_LOCK = threading.Lock()
_BACKENDS: dict[tuple[str, int], FieldBackend] = {}
_warned_missing_numpy = False


def _warn_missing_numpy() -> None:
    global _warned_missing_numpy
    if not _warned_missing_numpy:
        _warned_missing_numpy = True
        warnings.warn(
            "REPRO_FIELD_BACKEND requested the numpy backend but numpy is not "
            "importable; degrading to the scalar backend",
            RuntimeWarning,
            stacklevel=4,
        )


def resolve_backend(spec: "str | FieldBackend | None", p: int) -> FieldBackend:
    """The backend a field of modulus ``p`` should use.

    ``spec`` is a :class:`FieldBackend` instance (used as-is), a name
    (``"scalar"`` / ``"numpy"`` / ``"auto"``), or ``None`` — which
    consults :data:`BACKEND_ENV_VAR` and then defaults to ``auto``.
    ``auto`` picks numpy when importable; an *explicit* numpy request
    without numpy degrades to scalar with a one-time warning.  Resolved
    backends are cached per ``(name, modulus)``, so every field over
    one modulus shares one backend object (and its kernels).
    """
    if isinstance(spec, FieldBackend):
        return spec
    name = (spec or os.environ.get(BACKEND_ENV_VAR) or "auto").strip().lower()
    if name == "auto":
        name = "numpy" if HAVE_NUMPY else "scalar"
    elif name == "numpy" and not HAVE_NUMPY:
        _warn_missing_numpy()
        name = "scalar"
    if name not in ("scalar", "numpy"):
        raise ValueError(
            f"unknown field backend {name!r}; choose from scalar, numpy, auto"
        )
    key = (name, p)
    backend = _BACKENDS.get(key)
    if backend is None:
        with _RESOLVE_LOCK:
            backend = _BACKENDS.get(key)
            if backend is None:
                cls = NumpyBackend if name == "numpy" else ScalarBackend
                backend = cls(p)
                _BACKENDS[key] = backend
    return backend
