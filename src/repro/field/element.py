"""Operator-friendly field elements.

``FieldElement`` wraps ``(field, value)`` and supports the usual
arithmetic operators, mixing freely with Python ints.  It exists for
application-level code (examples, app reference implementations, the
compiler front end); protocol internals use raw ints via ``PrimeField``.
"""

from __future__ import annotations

from .prime_field import PrimeField


class FieldElement:
    """An element of a specific prime field."""

    __slots__ = ("field", "value")

    def __init__(self, field: PrimeField, value: int):
        self.field = field
        self.value = value % field.p

    # -- helpers --------------------------------------------------------------

    def _coerce(self, other: "FieldElement | int") -> int:
        if isinstance(other, FieldElement):
            if other.field != self.field:
                raise ValueError(
                    f"cannot mix elements of {self.field} and {other.field}"
                )
            return other.value
        if isinstance(other, int):
            return other % self.field.p
        return NotImplemented  # type: ignore[return-value]

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other: "FieldElement | int") -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.add(self.value, v))

    __radd__ = __add__

    def __sub__(self, other: "FieldElement | int") -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.sub(self.value, v))

    def __rsub__(self, other: "FieldElement | int") -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.sub(v, self.value))

    def __mul__(self, other: "FieldElement | int") -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.mul(self.value, v))

    __rmul__ = __mul__

    def __truediv__(self, other: "FieldElement | int") -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.div(self.value, v))

    def __rtruediv__(self, other: "FieldElement | int") -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.field.div(v, self.value))

    def __pow__(self, e: int) -> "FieldElement":
        return FieldElement(self.field, self.field.pow(self.value, e))

    def __neg__(self) -> "FieldElement":
        return FieldElement(self.field, self.field.neg(self.value))

    def inv(self) -> "FieldElement":
        """Multiplicative inverse."""
        return FieldElement(self.field, self.field.inv(self.value))

    # -- comparisons & conversions ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return self.field == other.field and self.value == other.value
        if isinstance(other, int):
            return self.value == other % self.field.p
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.p, self.value))

    def __bool__(self) -> bool:
        return self.value != 0

    def __int__(self) -> int:
        return self.value

    def to_signed(self) -> int:
        """Interpret as a signed integer in (-p/2, p/2]."""
        return self.field.to_signed(self.value)

    def __repr__(self) -> str:
        return f"Fe({self.value} mod {self.field.name})"
