"""Finite-field substrate: named primes, scalar and vector arithmetic."""

from .backend import (
    BACKEND_ENV_VAR,
    HAVE_NUMPY,
    FieldBackend,
    NumpyBackend,
    ScalarBackend,
    available_backends,
    resolve_backend,
)
from .counting import CountingField, counting_field
from .crt import MAX_CONV, PLANE_TWO_ADICITY, mat_polymul_crt
from .element import FieldElement
from .params import GOLDILOCKS, NAMED_FIELDS, P128, P192, P220, FieldParams, field_params
from .prime_field import (
    CheckedPrimeField,
    PrimeField,
    checked_field,
    is_probable_prime,
)
from .vector import (
    hadamard,
    inner,
    outer,
    powers,
    vec_add,
    vec_addmul,
    vec_neg,
    vec_scale,
    vec_sub,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "CheckedPrimeField",
    "CountingField",
    "FieldBackend",
    "HAVE_NUMPY",
    "MAX_CONV",
    "NumpyBackend",
    "PLANE_TWO_ADICITY",
    "mat_polymul_crt",
    "ScalarBackend",
    "available_backends",
    "resolve_backend",
    "FieldElement",
    "FieldParams",
    "GOLDILOCKS",
    "NAMED_FIELDS",
    "P128",
    "P192",
    "P220",
    "PrimeField",
    "checked_field",
    "counting_field",
    "field_params",
    "hadamard",
    "inner",
    "is_probable_prime",
    "outer",
    "powers",
    "vec_add",
    "vec_addmul",
    "vec_neg",
    "vec_scale",
    "vec_sub",
]
