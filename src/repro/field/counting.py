"""Opt-in field-operation counting for telemetry.

``PrimeField`` itself stays uninstrumented so the protocol hot loops
pay zero overhead when nobody is measuring (the zero-overhead guard
test enforces this).  When a run *should* count field work — the
``repro trace`` subcommand, the benchmark harness — it compiles the
program against a :class:`CountingField`, whose arithmetic reports
``field.*`` counters to the innermost active telemetry span.

Counter names (see docs/OBSERVABILITY.md):

======================  ====================================================
``field.mul``           multiplications (the cost-model parameter ``f``),
                        including each product inside an inner product
``field.add``           additions/subtractions/negations
``field.div``           divisions (``f_div``); each costs one inversion
``field.inv``           modular inversions (including batch_inv's single one)
``field.pow``           modular exponentiations
======================  ====================================================
"""

from __future__ import annotations

from typing import Sequence

from .. import telemetry
from .prime_field import PrimeField


class CountingField(PrimeField):
    """A ``PrimeField`` whose operations report telemetry counters.

    Equality and hashing are inherited (by modulus), so a counting
    field interoperates with caches and cross-checks against the plain
    field it wraps.
    """

    __slots__ = ()

    def add(self, a: int, b: int) -> int:
        """a + b mod p, counted as ``field.add``."""
        telemetry.count("field.add")
        return super().add(a, b)

    def sub(self, a: int, b: int) -> int:
        """a − b mod p, counted as ``field.add``."""
        telemetry.count("field.add")
        return super().sub(a, b)

    def neg(self, a: int) -> int:
        """−a mod p, counted as ``field.add``."""
        telemetry.count("field.add")
        return super().neg(a)

    def mul(self, a: int, b: int) -> int:
        """a · b mod p, counted as ``field.mul``."""
        telemetry.count("field.mul")
        return super().mul(a, b)

    def mul_lazy(self, a: int, b: int) -> int:
        """Unreduced product, counted as ``field.mul``."""
        telemetry.count("field.mul")
        return super().mul_lazy(a, b)

    def square(self, a: int) -> int:
        """a² mod p, counted as ``field.mul``."""
        telemetry.count("field.mul")
        return super().square(a)

    def pow(self, a: int, e: int) -> int:
        """a^e mod p, counted as ``field.pow``."""
        telemetry.count("field.pow")
        return super().pow(a, e)

    def inv(self, a: int) -> int:
        """a⁻¹ mod p, counted as ``field.inv``."""
        telemetry.count("field.inv")
        return super().inv(a)

    def div(self, a: int, b: int) -> int:
        """a / b mod p, counted as ``field.div``."""
        telemetry.count("field.div")
        return super().div(a, b)

    def inner_product(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Σ aᵢbᵢ mod p, counted as ``len(a)`` muls and adds."""
        telemetry.count("field.mul", len(a))
        telemetry.count("field.add", len(a))
        return super().inner_product(a, b)

    def batch_inv(self, values: Sequence[int]) -> list[int]:
        """Montgomery batch inversion: 3n ``field.mul`` + one ``field.inv``."""
        # Montgomery's trick: 3n muls + one real inversion
        telemetry.count("field.mul", 3 * len(values))
        telemetry.count("field.inv")
        return super().batch_inv(values)

    # -- vector kernels -------------------------------------------------------
    #
    # Counted per *element*, not per call, and by the canonical algorithm's
    # cost — never by what the active backend happens to execute — so the
    # Figure 5 op-count tables are identical under every backend.  (The
    # parity suite pins this cross-backend.)

    def vec_add(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Componentwise sum: ``len(a)`` ``field.add``."""
        telemetry.count("field.add", len(a))
        return super().vec_add(a, b)

    def vec_sub(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Componentwise difference: ``len(a)`` ``field.add``."""
        telemetry.count("field.add", len(a))
        return super().vec_sub(a, b)

    def vec_neg(self, a: Sequence[int]) -> list[int]:
        """Componentwise negation: ``len(a)`` ``field.add``."""
        telemetry.count("field.add", len(a))
        return super().vec_neg(a)

    def vec_scale(self, c: int, a: Sequence[int]) -> list[int]:
        """Scalar multiple: ``len(a)`` ``field.mul``."""
        telemetry.count("field.mul", len(a))
        return super().vec_scale(c, a)

    def vec_addmul(self, a: Sequence[int], c: int, b: Sequence[int]) -> list[int]:
        """a + c·b: ``len(a)`` ``field.mul`` + ``len(a)`` ``field.add``."""
        telemetry.count("field.mul", len(a))
        telemetry.count("field.add", len(a))
        return super().vec_addmul(a, c, b)

    def hadamard(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Componentwise product: ``len(a)`` ``field.mul``."""
        telemetry.count("field.mul", len(a))
        return super().hadamard(a, b)

    def transform(self, plan, values: list[int], invert: bool = False) -> list[int]:
        """Size-n radix-2 NTT: (n/2)·log₂n muls + n·log₂n adds.

        The inverse transform's fused n⁻¹ scaling adds n more muls.
        """
        n = plan.n
        levels = n.bit_length() - 1
        telemetry.count("field.mul", (n >> 1) * levels + (n if invert else 0))
        telemetry.count("field.add", n * levels)
        return super().transform(plan, values, invert)

    # -- 2-D batch-axis kernels ----------------------------------------------
    #
    # Same rule: the canonical per-element cost, independent of whether
    # the backend ran one fused array program or B separate rows.

    @staticmethod
    def _mat_elems(rows) -> int:
        return sum(len(row) for row in rows)

    def mat_add(self, a, b) -> list[list[int]]:
        """Row-wise sums: one ``field.add`` per element."""
        telemetry.count("field.add", self._mat_elems(a))
        return super().mat_add(a, b)

    def mat_sub(self, a, b) -> list[list[int]]:
        """Row-wise differences: one ``field.add`` per element."""
        telemetry.count("field.add", self._mat_elems(a))
        return super().mat_sub(a, b)

    def mat_hadamard(self, a, b) -> list[list[int]]:
        """Row-wise products: one ``field.mul`` per element."""
        telemetry.count("field.mul", self._mat_elems(a))
        return super().mat_hadamard(a, b)

    def mat_addmul(self, a, c: int, b) -> list[list[int]]:
        """Row-wise a + c·b: one mul and one add per element."""
        elems = self._mat_elems(a)
        telemetry.count("field.mul", elems)
        telemetry.count("field.add", elems)
        return super().mat_addmul(a, c, b)

    def mat_inner_product(self, a, b) -> list[int]:
        """Per-row inner products: one mul and one add per element."""
        elems = self._mat_elems(a)
        telemetry.count("field.mul", elems)
        telemetry.count("field.add", elems)
        return super().mat_inner_product(a, b)

    def mat_batch_inv(self, rows) -> list[list[int]]:
        """Flattened Montgomery scan: 3n muls + ONE real inversion."""
        telemetry.count("field.mul", 3 * self._mat_elems(rows))
        telemetry.count("field.inv")
        return super().mat_batch_inv(rows)

    def mat_transform(self, plan, rows, invert: bool = False) -> list[list[int]]:
        """B stacked transforms cost B × the 1-D transform."""
        n = plan.n
        levels = n.bit_length() - 1
        batch = len(rows)
        telemetry.count(
            "field.mul", batch * ((n >> 1) * levels + (n if invert else 0))
        )
        telemetry.count("field.add", batch * n * levels)
        return super().mat_transform(plan, rows, invert)

    def mat_polymul(self, rows_a, rows_b):
        """No fast path under counting: the CRT route's residue-plane
        op mix has no canonical ``field.*`` equivalent, so counting
        runs always take the transform/poly_mul route it replaces."""
        return None


def counting_field(base: PrimeField) -> CountingField:
    """A counting twin of ``base`` (same modulus, name, NTT structure)."""
    if isinstance(base, CountingField):
        return base
    twin = CountingField(base.p, check_prime=False, backend=base.backend)
    twin.name = base.name
    twin.two_adicity = base.two_adicity
    twin._two_adic_generator = base._two_adic_generator
    return twin
