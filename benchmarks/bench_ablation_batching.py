"""Ablation: batching (§2.2).

The verifier's query setup is paid once per batch; this bench measures
the verifier's amortized per-instance cost at β ∈ {1, 2, 4, 8} and
checks it falls toward the per-instance floor — the mechanism behind
every breakeven number in Figure 7.
"""

import random

import pytest

from repro.apps import ALL_APPS
from repro.argument import ArgumentConfig, ZaatarArgument
from repro.pcp import SoundnessParams

from _harness import FIELD, compiled, fmt_seconds, print_table, sizes_key

APP = "longest_common_subsequence"
SIZES = {"m": 4}
BATCHES = [1, 2, 4, 8]


def test_batching_amortization(benchmark):
    def run():
        app = ALL_APPS[APP]
        prog = compiled(APP, sizes_key(SIZES))
        rng = random.Random(23)
        out = {}
        for beta in BATCHES:
            arg = ZaatarArgument(
                prog, ArgumentConfig(params=SoundnessParams(rho_lin=2, rho=1))
            )
            batch = [app.generate_inputs(rng, SIZES) for _ in range(beta)]
            result = arg.run_batch(batch)
            assert result.all_accepted
            v = result.stats.verifier
            out[beta] = (
                (v.query_setup + v.per_instance) / beta,
                v.query_setup,
                v.per_instance / beta,
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [str(beta), fmt_seconds(amortized), fmt_seconds(setup), fmt_seconds(per)]
        for beta, (amortized, setup, per) in sorted(results.items())
    ]
    print_table(
        "Ablation: verifier cost amortization over batch size",
        ["batch size", "amortized per-instance", "setup (once)", "per-instance"],
        rows,
    )
    amortized = [results[b][0] for b in BATCHES]
    # amortized cost must fall monotonically (generously: each doubling
    # cuts at least 25%)
    for smaller, larger in zip(amortized, amortized[1:]):
        assert larger < smaller * 0.9, amortized
