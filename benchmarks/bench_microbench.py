"""§5.1 microbenchmark table: e, d, h, f_lazy, f, f_div, c per field size.

Paper's table (Xeon E5540, GMP, 1024-bit ElGamal):

    field   e      d      h      f_lazy  f      f_div  c
    128b    65us   170us  91us   68ns    210ns  2us    160ns
    220b    88us   170us  130us  90ns    320ns  3us    260ns

This bench regenerates the same rows on this machine (pure Python, so
absolute values are larger; the *orderings* — crypto ops ~10²-10³×
field ops, f_div ~10× f, larger field slower — must reproduce).
"""

import pytest

from repro.costmodel import run_microbench
from repro.crypto import ElGamalKeypair, FieldPRG, group_for_field
from repro.field import P128, P220, PrimeField

from _harness import RESULTS, print_table

FIELD_128 = PrimeField(P128, check_prime=False)
FIELD_220 = PrimeField(P220, check_prime=False)


def test_microbench_table(benchmark):
    """Regenerate the §5.1 table (both field sizes) and sanity-check order."""
    measurements = benchmark.pedantic(
        lambda: [
            run_microbench(field, reps=2000, crypto_reps=10)
            for field in (FIELD_128, FIELD_220)
        ],
        rounds=1,
        iterations=1,
    )
    rows = []
    for field, mb in zip((FIELD_128, FIELD_220), measurements):
        RESULTS[("microbench", field.bits)] = mb
        rows.append(
            [
                f"{field.bits} bits",
                f"{mb.e * 1e6:.0f} us",
                f"{mb.d * 1e6:.0f} us",
                f"{mb.h * 1e6:.0f} us",
                f"{mb.f_lazy * 1e9:.0f} ns",
                f"{mb.f * 1e9:.0f} ns",
                f"{mb.f_div * 1e6:.2f} us",
                f"{mb.c * 1e9:.0f} ns",
            ]
        )
        # shape assertions mirroring the paper's table
        assert mb.e > 50 * mb.f, "encryption must dwarf a field multiply"
        assert mb.d > 50 * mb.f
        assert mb.h > 10 * mb.f
        assert mb.f_div > mb.f
    print_table(
        "Section 5.1 microbenchmarks (this machine)",
        ["field size", "e", "d", "h", "f_lazy", "f", "f_div", "c"],
        rows,
    )


@pytest.mark.parametrize("field", [FIELD_128, FIELD_220], ids=["p128", "p220"])
def test_field_multiply(benchmark, field):
    """The `f` parameter as a pytest-benchmark measurement."""
    prg = FieldPRG(field, b"bench-f")
    a, b = prg.next_nonzero(), prg.next_nonzero()
    benchmark(field.mul, a, b)


@pytest.mark.parametrize("field", [FIELD_128, FIELD_220], ids=["p128", "p220"])
def test_field_divide(benchmark, field):
    prg = FieldPRG(field, b"bench-fdiv")
    a, b = prg.next_nonzero(), prg.next_nonzero()
    benchmark(field.div, a, b)


@pytest.mark.parametrize("field", [FIELD_128, FIELD_220], ids=["p128", "p220"])
def test_prg_draw(benchmark, field):
    """The `c` parameter."""
    prg = FieldPRG(field, b"bench-c")
    benchmark(prg.next_element)


def test_elgamal_encrypt(benchmark):
    """The `e` parameter (paper-scale 1024-bit group over P128)."""
    group = group_for_field(FIELD_128, paper_scale=True)
    prg = FieldPRG(FIELD_128, b"bench-e")
    keypair = ElGamalKeypair.generate(group, prg)
    benchmark(keypair.public.encrypt, 123456, prg)


def test_elgamal_decrypt(benchmark):
    """The `d` parameter."""
    group = group_for_field(FIELD_128, paper_scale=True)
    prg = FieldPRG(FIELD_128, b"bench-d")
    keypair = ElGamalKeypair.generate(group, prg)
    ct = keypair.public.encrypt(123456, prg)
    benchmark(keypair.decrypt_to_group, ct)
