"""Figure 8: prover running time vs input size (three doubling points).

Paper: "Zaatar's prover's work scales linearly; Ginger's,
quadratically."  For each of the five computations we measure Zaatar's
prover at the three sweep sizes and estimate Ginger at the same sizes
via the cost model, then fit log-log slopes *in the encoding size*
|C_zaatar| (resp. |u_ginger|): Zaatar's time must grow ~linearly with
its (linear) encoding, Ginger's ~linearly with its (quadratic)
encoding — i.e. quadratically in the computation.
"""

import math

import pytest

from repro.apps import ALL_APPS
from repro.costmodel import ginger_costs
from repro.pcp import PAPER_PARAMS

from _harness import (
    APP_ORDER,
    BENCH_PARAMS,
    RESULTS,
    fmt_seconds,
    measure_zaatar,
    measured_microbench,
    print_table,
    profile_for,
)


def _fit_slope(xs, ys):
    """Least-squares slope of log(y) against log(x)."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(xs)
    mx, my = sum(lx) / n, sum(ly) / n
    num = sum((a - mx) * (b - my) for a, b in zip(lx, ly))
    den = sum((a - mx) ** 2 for a in lx)
    return num / den


def test_fig8_scaling(benchmark):
    def run():
        mb = measured_microbench()
        out = {}
        for name in APP_ORDER:
            app = ALL_APPS[name]
            points = []
            for sizes in app.sweep:
                measured = measure_zaatar(name, dict(sizes))
                profile = profile_for(name, dict(sizes))
                ginger = ginger_costs(profile, mb, PAPER_PARAMS)
                points.append(
                    (
                        dict(sizes),
                        profile.stats,
                        measured.prover.e2e,
                        ginger.prover_per_instance,
                    )
                )
            out[name] = points
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    slopes = {}
    for name in APP_ORDER:
        points = results[name]
        for sizes, stats, z_time, g_time in points:
            rows.append(
                [
                    name,
                    str(sizes.get("m")),
                    fmt_seconds(z_time),
                    fmt_seconds(g_time),
                    f"{g_time / z_time:.0f}x",
                ]
            )
        # Zaatar's measured time vs its linear encoding |C_zaatar|
        z_slope = _fit_slope(
            [p[1].c_zaatar for p in points], [p[2] for p in points]
        )
        # Ginger's modeled time vs the same |C_zaatar| axis: since
        # |u_ginger| ~ |C|², the slope must come out near 2.
        g_slope = _fit_slope(
            [p[1].c_zaatar for p in points], [p[3] for p in points]
        )
        slopes[name] = (z_slope, g_slope)
        RESULTS[("fig8", name)] = (points, z_slope, g_slope)
    print_table(
        "Figure 8: prover time at doubling input sizes",
        ["computation", "m", "Zaatar (measured)", "Ginger (modeled)", "gap"],
        rows,
    )
    slope_rows = [
        [name, f"{z:.2f}", f"{g:.2f}"] for name, (z, g) in slopes.items()
    ]
    print_table(
        "Figure 8 fits: log-log slope of prover time vs |C_zaatar|",
        ["computation", "Zaatar slope (≈1 = linear)", "Ginger slope (≈2 = quadratic)"],
        slope_rows,
    )
    for name, (z_slope, g_slope) in slopes.items():
        assert z_slope < 1.7, (name, z_slope)   # near-linear (log² factors allowed)
        if name == "root_finding_bisection":
            # Bisection's Ginger encoding is dominated by one dense
            # degree-2 constraint whose variable count barely grows
            # with m ("the Ginger encoding is actually very concise"
            # for dense degree-2 evaluation, §4) — so Ginger does not
            # scale quadratically HERE, which is also why Figure 4/8
            # show this benchmark with the smallest Zaatar advantage.
            continue
        assert g_slope > 1.5, (name, g_slope)   # clearly superlinear/quadratic
        assert g_slope > z_slope, name
