"""Cost-model validation: measured Zaatar costs vs Figure-3 predictions.

Paper (§5.1): "we find that the empirical CPU costs are 5-15% larger
than the model's predictions."  A pure-Python runtime adds interpreter
overhead the model's per-op constants only partly capture, so the
acceptance band here is wider; what must reproduce is (a) the model
*underestimates* rather than wildly overestimates, and (b) measured
and predicted costs rank the benchmarks the same way.
"""

import pytest

from repro.costmodel import zaatar_costs

from _harness import (
    APP_ORDER,
    BENCH_PARAMS,
    fmt_seconds,
    measure_zaatar,
    measured_microbench,
    print_table,
    profile_for,
)


def test_model_validation(benchmark):
    def run():
        mb = measured_microbench()
        out = {}
        for name in APP_ORDER:
            measured = measure_zaatar(name)
            profile = profile_for(name)
            predicted = zaatar_costs(profile, mb, BENCH_PARAMS)
            out[name] = (measured.prover.e2e, predicted.prover_per_instance)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    ratios = {}
    for name in APP_ORDER:
        measured_s, predicted_s = results[name]
        ratio = measured_s / predicted_s
        ratios[name] = ratio
        rows.append(
            [name, fmt_seconds(measured_s), fmt_seconds(predicted_s), f"{ratio:.2f}x"]
        )
    print_table(
        "Cost-model validation: measured vs Figure-3 prediction (Zaatar prover)",
        ["computation", "measured", "predicted", "measured/predicted"],
        rows,
    )
    measured_order = sorted(APP_ORDER, key=lambda n: results[n][0])
    predicted_order = sorted(APP_ORDER, key=lambda n: results[n][1])
    # ranking agreement: allow one transposition
    disagreements = sum(
        a != b for a, b in zip(measured_order, predicted_order)
    )
    assert disagreements <= 2, (measured_order, predicted_order)
    # the model is in the right ballpark (paper: within 15%; Python
    # interpreter overhead widens this, but not by orders of magnitude)
    for name, ratio in ratios.items():
        assert 0.2 < ratio < 30, (name, ratio)
