"""Ablation: both systems *measured* on each system's home turf.

§1 frames the prior-work tradeoff: Ginger "achieve[s] efficiency for
hand-tailored protocols for particular computations (e.g., matrix
multiplication)" while paying quadratically elsewhere.  The matmul
extension app compiles to constraints with |Z_ginger| ≈ 0 (all
products involve bound inputs), so Ginger's (z, z⊗z) proof is tiny
there — whereas on a general computation (LCS) it explodes.

Both provers run for real at small sizes (the only regime where the
Ginger prover is runnable at all), and the hybrid chooser's verdicts
are checked against the measured winner.
"""

import random

import pytest

from repro.apps import ALL_APPS, MATMUL
from repro.argument import (
    ArgumentConfig,
    GingerArgument,
    ZaatarArgument,
    choose_encoding,
)
from repro.pcp import SoundnessParams

from _harness import FIELD, compiled, fmt_seconds, print_table, sizes_key

PARAMS = SoundnessParams(rho_lin=2, rho=1)


def _measure_both(prog, inputs):
    out = {}
    for label, cls in (("zaatar", ZaatarArgument), ("ginger", GingerArgument)):
        arg = cls(prog, ArgumentConfig(params=PARAMS))
        result = arg.run_batch([inputs])
        assert result.all_accepted, label
        out[label] = result.stats.mean_prover().e2e
    return out


def test_tailored_crossover(benchmark):
    def run():
        rng = random.Random(41)
        matmul_prog = MATMUL.compile(FIELD, {"m": 3})
        matmul_inputs = MATMUL.generate_inputs(rng, {"m": 3})
        lcs = ALL_APPS["longest_common_subsequence"]
        lcs_prog = compiled("longest_common_subsequence", sizes_key({"m": 4}))
        lcs_inputs = lcs.generate_inputs(rng, {"m": 4})
        return {
            "matmul m=3 (Ginger's home turf)": (
                matmul_prog,
                _measure_both(matmul_prog, matmul_inputs),
            ),
            "LCS m=4 (general computation)": (
                lcs_prog,
                _measure_both(lcs_prog, lcs_inputs),
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, (prog, times) in results.items():
        decision = choose_encoding(prog)
        rows.append(
            [
                label,
                fmt_seconds(times["zaatar"]),
                fmt_seconds(times["ginger"]),
                "zaatar" if times["zaatar"] < times["ginger"] else "ginger",
                decision.system,
            ]
        )
    print_table(
        "Ablation: measured prover time on each system's home turf",
        ["computation", "Zaatar", "Ginger", "measured winner", "chooser says"],
        rows,
    )
    print(
        "\nnote: the chooser scores Ginger by the paper's accounting, where the\n"
        "proof covers only UNBOUND variables (matmul has none — which is why\n"
        "hand-tailored matmul protocols were efficient).  Our executable Ginger\n"
        "baseline is general-purpose and carries all variables plus binding\n"
        "rows, so measured Zaatar can win even where the idealized/tailored\n"
        "Ginger would not — the generality-vs-efficiency tension of §1 itself."
    )
    matmul_prog, matmul_times = results["matmul m=3 (Ginger's home turf)"]
    lcs_prog, lcs_times = results["LCS m=4 (general computation)"]
    # the general computation is Zaatar's win, measured
    assert lcs_times["zaatar"] < lcs_times["ginger"]
    # and the chooser's verdicts match the structure
    assert choose_encoding(matmul_prog).system == "ginger"
    assert choose_encoding(lcs_prog).system == "zaatar"
