"""Ablation: the §4 degenerate case (dense degree-2 polynomial evaluation).

"There are cases when Zaatar is worse than Ginger [but] they are
contrived computations with a particular structure (e.g., evaluation
of dense degree-2 polynomials)."  This bench compiles exactly that
computation, confirms K₂ reaches its maximum and the proof-shrink
advantage collapses to ≈1×, and contrasts it with a normal benchmark
where the advantage is large — the crossover the compiler could use to
"simply choose Ginger over Zaatar" (§4 footnote 5).
"""

import pytest

from repro.compiler import compile_program

from _harness import FIELD, compiled, print_table, sizes_key


def dense_poly_program(n):
    """y = Σ_{i≤j} t_i·t_j over intermediate variables t_i = x_i + i + 1.

    The intermediates make the t's *unbound* variables, so the dense
    quadratic form lands in the Ginger proof's z-part — the structure
    §4 identifies as degenerate (every pair of unbound variables
    appears as a degree-2 term).
    """

    def build(b):
        xs = b.inputs(n)
        ts = [b.define_fresh(x + i + 1) for i, x in enumerate(xs)]
        acc = b.constant(0)
        for i in range(n):
            for j in range(i, n):
                acc = acc + ts[i] * ts[j]
        b.output(acc)

    return compile_program(FIELD, build, name=f"dense_poly_{n}")


def test_degenerate_crossover(benchmark):
    def run():
        out = {}
        for n in (4, 8, 16):
            st = dense_poly_program(n).stats()
            out[f"dense degree-2 poly (n={n})"] = st
        out["LCS m=8 (normal)"] = compiled(
            "longest_common_subsequence", sizes_key({"m": 8})
        ).stats()
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, st in results.items():
        rows.append(
            [
                label,
                str(st.k2_terms),
                str(st.k2_star),
                "yes" if st.is_degenerate else "no",
                f"{st.proof_shrink_factor:.1f}x",
            ]
        )
    print_table(
        "Ablation: degenerate computations (K2 vs K2*)",
        ["computation", "K2", "K2*", "degenerate?", "|ug|/|uz|"],
        rows,
    )
    dense = [st for label, st in results.items() if label.startswith("dense")]
    normal = results["LCS m=8 (normal)"]
    # dense degree-2 evaluation hits (or approaches) the degenerate regime
    assert any(st.is_degenerate or st.k2_terms > 0.5 * st.k2_star for st in dense)
    # its shrink advantage is a small constant, versus large for LCS
    assert max(st.proof_shrink_factor for st in dense) < 10
    assert normal.proof_shrink_factor > 50
    # even in the worst case Zaatar is never catastrophically worse:
    # |u_zaatar| ≤ |u_ginger|·(1 + δ) + O(|C|) (§4's second point)
    for st in dense:
        assert st.u_zaatar <= st.worst_case_u_zaatar_bound() + st.c_ginger + 2
