"""Figure 5: decomposition of the Zaatar prover's per-instance cost.

Paper columns: local | solve constraints | construct u | crypto ops |
answer queries | e2e CPU time.  The headline shape: the prover's e2e
is orders of magnitude above local execution, with the work split
roughly between proof-vector construction, crypto, and query answering
(§5.2: "about 35% ... crypto, about 40% ... proof vectors, and the
remainder ... answering queries").
"""

import pytest

from _harness import (
    APP_ORDER,
    RESULTS,
    bench_trace,
    emit_results,
    fmt_seconds,
    measure_zaatar,
    print_table,
)


def test_fig5_breakdown(benchmark):
    def run():
        return {name: measure_zaatar(name) for name in APP_ORDER}

    with bench_trace("fig5"):
        measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name in APP_ORDER:
        m = measured[name]
        p = m.prover
        RESULTS[("fig5", name)] = m
        rows.append(
            [
                name,
                fmt_seconds(m.local),
                fmt_seconds(p.solve_constraints),
                fmt_seconds(p.construct_u),
                fmt_seconds(p.crypto_ops),
                fmt_seconds(p.answer_queries),
                fmt_seconds(p.e2e),
            ]
        )
    print_table(
        "Figure 5: Zaatar prover cost decomposition (per instance)",
        [
            "computation",
            "local",
            "solve constraints",
            "construct u",
            "crypto ops",
            "answer queries",
            "e2e CPU",
        ],
        rows,
    )
    emit_results("fig5")
    for name in APP_ORDER:
        m = measured[name]
        # prover is far more expensive than local execution (paper shape)
        assert m.prover.e2e > 10 * m.local, name
        # every phase contributes nontrivially
        assert m.prover.construct_u > 0 and m.prover.crypto_ops > 0, name
