"""Ablation: the compiler's CSE pass (the paper's 'better compiler').

§1's next-steps list: "we need a better compiler."  This bench
measures what the first classical pass — common-subexpression
elimination with shared bit decompositions — buys on (a) the benchmark
suite, where generated code is already fairly tight, and (b) a
redundancy-heavy program shaped like naive machine-generated code.
Constraint-count savings translate 1:1 into prover time (Figure 3:
every cost row is proportional to |C| or |u|).
"""

import pytest

from repro.apps import ALL_APPS
from repro.compiler import compile_program, less_than

from _harness import APP_ORDER, FIELD, print_table


def _redundant_program(passes=4, width=4):
    def build(b):
        xs = b.inputs(width)
        total = b.constant(0)
        for _ in range(passes):
            for i in range(width):
                norm = b.define(xs[i] * xs[i] + xs[(i + 1) % width])
                total = total + less_than(b, norm, 100, bit_width=10)
        b.output(total)

    return build


def test_cse_ablation(benchmark):
    def run():
        rows = []
        for name in APP_ORDER:
            app = ALL_APPS[name]
            plain = app.compile(FIELD)
            optimized = compile_program(
                FIELD, app.build_factory(**app.default_sizes), optimize=True
            )
            rows.append(
                (
                    name,
                    plain.ginger.num_constraints,
                    optimized.ginger.num_constraints,
                )
            )
        plain = compile_program(FIELD, _redundant_program())
        optimized = compile_program(FIELD, _redundant_program(), optimize=True)
        rows.append(
            (
                "redundant generated code",
                plain.ginger.num_constraints,
                optimized.ginger.num_constraints,
            )
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = [
        [name, str(before), str(after), f"{(1 - after / before) * 100:.1f}%"]
        for name, before, after in rows
    ]
    print_table(
        "Ablation: CSE pass, Ginger constraint counts",
        ["computation", "|C| plain", "|C| with CSE", "saved"],
        table,
    )
    for name, before, after in rows:
        assert after <= before, name
    # hand-written benchmark circuits are tight (small savings); naive
    # generated code is not
    redundant = rows[-1]
    assert redundant[2] < redundant[1] / 2
