"""Ablation: σ-point placement (DESIGN.md §6).

The paper places the interpolation points at the arithmetic
progression 1..|C| so the *verifier's* barycentric weights are cheap
(§A.3).  Modern QAP systems instead put the σ at a multiplicative
subgroup, which turns the *prover's* interpolation into inverse NTTs.
This bench runs the prover's H-pipeline under both placements and
reports the trade-off.
"""

import time

import pytest

from repro.qap import build_qap, compute_h

from _harness import FIELD, compiled, fmt_seconds, print_table, sizes_key

SIZES = {"m": 12}
APP = "longest_common_subsequence"


@pytest.fixture(scope="module")
def witness():
    import random

    from repro.apps import ALL_APPS

    prog = compiled(APP, sizes_key(SIZES))
    app = ALL_APPS[APP]
    inputs = app.generate_inputs(random.Random(5), SIZES)
    return prog, prog.solve(inputs).quadratic_witness


@pytest.mark.parametrize("mode", ["arithmetic", "roots"])
def test_compute_h_by_mode(benchmark, witness, mode):
    prog, w = witness
    qap = build_qap(prog.quadratic, mode=mode)
    qap.subproduct_tree if mode == "arithmetic" else None  # warm the cache
    if mode == "arithmetic":
        _ = qap.divisor_poly
    benchmark.pedantic(compute_h, args=(qap, w), rounds=3, iterations=1)


def test_sigma_placement_comparison(benchmark, witness):
    prog, w = witness

    def run():
        out = {}
        for mode in ("arithmetic", "roots"):
            qap = build_qap(prog.quadratic, mode=mode)
            if mode == "arithmetic":
                _ = qap.subproduct_tree, qap.divisor_poly  # precompute (batch-amortized)
            start = time.process_time()
            h = compute_h(qap, w)
            out[mode] = (time.process_time() - start, len(h))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [mode, fmt_seconds(t), str(h_len)]
        for mode, (t, h_len) in results.items()
    ]
    print_table(
        "Ablation: prover H-pipeline by sigma placement (|C|=%d)"
        % compiled(APP, sizes_key(SIZES)).quadratic.num_constraints,
        ["sigma mode", "compute_h time", "|h|"],
        rows,
    )
    # The NTT path must beat the subproduct tree at this size.
    assert results["roots"][0] < results["arithmetic"][0]
