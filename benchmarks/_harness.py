"""Shared helpers for the figure/table reproduction benches.

Every bench prints the rows/series of the paper figure it regenerates
(absolute numbers differ — pure Python vs C++/GMP — but the *shape*
must match: who wins, by what factor, and the scaling exponents).
Results are also accumulated into ``RESULTS`` so the EXPERIMENTS.md
generator can pick them up from one run.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path

from repro import telemetry
from repro.apps import ALL_APPS, SCENARIO_APPS, BenchmarkApp
from repro.benchgate import bench_metadata
from repro.argument import ArgumentConfig, ProverStats, ZaatarArgument
from repro.costmodel import (
    ComputationProfile,
    MicrobenchParams,
    run_microbench,
)
from repro.field import GOLDILOCKS, PrimeField
from repro.pcp import SoundnessParams

#: Soundness parameters for benches: smaller repetition counts than the
#: paper's production values (ρ_lin=20, ρ=8) so pure-Python runs finish;
#: the cost model is evaluated at BOTH parameter sets where relevant.
BENCH_PARAMS = SoundnessParams(rho_lin=2, rho=1)

FIELD = PrimeField(GOLDILOCKS, check_prime=False)

APP_ORDER = [
    "pam_clustering",
    "root_finding_bisection",
    "all_pairs_shortest_path",
    "fannkuch",
    "longest_common_subsequence",
]

#: global result store, keyed by (figure, label)
RESULTS: dict = {}

#: where emit_results/bench_trace drop their artifacts (gitignored)
OUT_DIR = Path(__file__).resolve().parent / "out"


@contextmanager
def bench_trace(figure: str):
    """Run a bench body under telemetry; write its trace on exit.

    The trace lands next to the figure's result file:
    ``benchmarks/out/BENCH_<figure>.trace.jsonl``.  Yields the tracer so
    the bench can attach attrs to spans if it wants to.
    """
    tracer = telemetry.enable()
    try:
        with telemetry.span(f"bench.{figure}"):
            yield tracer
    finally:
        telemetry.disable()
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    telemetry.write_jsonl(tracer, OUT_DIR / f"BENCH_{figure}.trace.jsonl")


def _jsonable(value):
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return repr(value)


def emit_results(figure: str) -> Path:
    """Write one figure's RESULTS rows to ``BENCH_<figure>.json``.

    The artifact is stamped with provenance metadata (schema version,
    git sha, backend, interpreter versions) so two artifacts can be
    diffed by ``repro bench-check`` — see ``repro.benchgate``.
    """
    rows = {
        label: _jsonable(value)
        for (fig, label), value in RESULTS.items()
        if fig == figure
    }
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / f"BENCH_{figure}.json"
    document = {
        "figure": figure,
        "meta": bench_metadata(backend=FIELD.backend.name),
        "results": rows,
    }
    path.write_text(json.dumps(document, indent=2) + "\n")
    return path


@lru_cache(maxsize=None)
def compiled(app_name: str, sizes_key: tuple = ()) -> object:
    app = SCENARIO_APPS[app_name]
    return app.compile(FIELD, dict(sizes_key))


def sizes_key(sizes: dict | None) -> tuple:
    return tuple(sorted((sizes or {}).items()))


@lru_cache(maxsize=1)
def measured_microbench() -> MicrobenchParams:
    """This machine's (Python) microbench constants, measured once."""
    return run_microbench(FIELD, reps=2000, crypto_reps=20)


def local_seconds(app: BenchmarkApp, sizes: dict | None, repeats: int = 5) -> float:
    """Average local (unverified) execution time of the computation."""
    rng = random.Random(7)
    inputs = app.generate_inputs(rng, sizes)
    start = time.process_time()
    for _ in range(repeats):
        app.reference(inputs, sizes)
    return (time.process_time() - start) / repeats


def profile_for(app_name: str, sizes: dict | None = None) -> ComputationProfile:
    app = SCENARIO_APPS[app_name]
    prog = compiled(app_name, sizes_key(sizes))
    return ComputationProfile(
        stats=prog.stats(),
        local_seconds=local_seconds(app, sizes),
        num_inputs=prog.num_inputs,
        num_outputs=prog.num_outputs,
    )


@dataclass
class MeasuredInstance:
    prover: ProverStats
    verifier_setup: float
    verifier_per_instance: float
    local: float


def measure_zaatar(app_name: str, sizes: dict | None = None, batch: int = 1) -> MeasuredInstance:
    """Run the full Zaatar argument and return measured per-phase costs."""
    app = SCENARIO_APPS[app_name]
    prog = compiled(app_name, sizes_key(sizes))
    rng = random.Random(13)
    arg = ZaatarArgument(prog, ArgumentConfig(params=BENCH_PARAMS))
    inputs = [app.generate_inputs(rng, sizes) for _ in range(batch)]
    result = arg.run_batch(inputs)
    assert result.all_accepted, f"{app_name}: verification failed in bench"
    return MeasuredInstance(
        prover=result.stats.mean_prover(),
        verifier_setup=result.stats.verifier.query_setup,
        verifier_per_instance=result.stats.verifier.per_instance / batch,
        local=local_seconds(app, sizes),
    )


def paper_scale_profile(app_name: str) -> ComputationProfile:
    """The paper's own encoding sizes and local times, at paper scale.

    Figure 9 publishes closed-form encoding sizes and Figure 5 the
    measured local execution times for the §5.2 configurations; this
    builds a ``ComputationProfile`` straight from them, so the cost
    model can reproduce the paper-scale projections (Figure 7) that a
    pure-Python prover cannot reach by measurement.  K (additive terms)
    is not published; it is taken as (K/|C_ginger|) measured on our
    compiled systems times the published |C_ginger| — K only enters the
    amortized query-specific term, so the approximation is immaterial.
    """
    from repro.constraints import EncodingStats

    k_ratio = {
        name: compiled(name, sizes_key(None)).stats().k_terms
        / compiled(name, sizes_key(None)).stats().c_ginger
        for name in [app_name]
    }[app_name]

    if app_name == "pam_clustering":
        m, d = 20, 128
        z_g = c_g = 20 * m * m * d
        z_z = c_z = 60 * m * m * d
        u_g, u_z = 400 * m**4 * d * d, 120 * m * m * d
        num_in, num_out, local = m * d, 3, 51.6e-3
    elif app_name == "root_finding_bisection":
        m, L = 256, 8
        z_g = c_g = 2 * m * L
        z_z = c_z = m * m * L
        u_g, u_z = 4 * m * m * L * L, 2 * m * m * L
        num_in, num_out, local = 2 * m, 2, 0.8
    elif app_name == "all_pairs_shortest_path":
        m = 25
        z_g = z_z = 84 * m**3
        c_g = c_z = 89 * m**3
        u_g, u_z = 7140 * m**6, 173 * m**3
        num_in, num_out, local = m * m, m * m, 8.1e-3
    elif app_name == "fannkuch":
        m = 100
        z_g = z_z = c_g = c_z = 2200 * m
        u_g, u_z = int(4.8e6) * m * m, 4400 * m
        num_in, num_out, local = 13 * m, m + 1, 0.8e-3
    elif app_name == "longest_common_subsequence":
        m = 300
        z_g = z_z = c_g = c_z = 43 * m * m
        u_g, u_z = 1849 * m**4, 86 * m * m
        num_in, num_out, local = 2 * m, 1, 1.4e-3
    else:
        raise KeyError(app_name)

    stats = EncodingStats(
        z_ginger=z_g,
        c_ginger=c_g,
        k_terms=int(k_ratio * c_g),
        k2_terms=max(0, z_z - z_g),
        z_zaatar=z_z,
        c_zaatar=c_z,
        u_ginger=u_g,
        u_zaatar=u_z,
    )
    return ComputationProfile(
        stats=stats,
        local_seconds=local,
        num_inputs=num_in,
        num_outputs=num_out,
    )


def orders_of_magnitude(ratio: float) -> float:
    return math.log10(ratio) if ratio > 0 else float("-inf")


def fmt_seconds(s: float) -> str:
    if s == float("inf"):
        return "inf"
    if s >= 60:
        return f"{s / 60:.1f} min"
    if s >= 1:
        return f"{s:.2f} s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f} ms"
    return f"{s * 1e6:.1f} us"


def fmt_count(x: float) -> str:
    if x == float("inf"):
        return "inf"
    if x >= 1e6:
        return f"{x:.2e}"
    return f"{x:,.0f}"


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
