"""Differential-checker gate over the scenario library → BENCH_check.json.

Runs ``repro.compiler.check`` (semantics oracle, unsat-witness prober,
compiler-mutation harness) against every scenario app and stamps the
per-app verdicts — oracle coverage, probe kill counts, mutation kill
rate — into a ``BENCH_check.json`` artifact for ``repro bench-check``.

The two scenario-library extensions (private aggregation, streaming
automaton) additionally get the §5 cost-model validation the paper
apps receive in ``bench_model_validation.py``: measured Zaatar prover
cost vs the Figure-3 prediction, which must agree within the same
tolerance band (0.2 < measured/predicted < 30).

``--check`` turns the printout into a gate: exit 1 unless every app
passes the checker with a 100% mutation-kill rate and both extensions
validate against the cost model.
"""

import argparse
import sys
import time

from repro.apps import SCENARIO_APPS
from repro.compiler.check import check_app
from repro.costmodel import zaatar_costs

from _harness import (
    BENCH_PARAMS,
    FIELD,
    RESULTS,
    emit_results,
    fmt_seconds,
    measure_zaatar,
    measured_microbench,
    print_table,
    profile_for,
)

#: the scenario-library extensions that owe a fresh cost-model validation
NEW_SCENARIOS = ("private_aggregation", "streaming_automaton")


def run_checker(seed: int) -> dict:
    rows = {}
    for name in sorted(SCENARIO_APPS):
        app = SCENARIO_APPS[name]
        start = time.perf_counter()
        report = check_app(app, FIELD, seed=seed)
        elapsed = time.perf_counter() - start
        rows[name] = {
            "passed": report.passed,
            "oracle_cases": report.oracle["cases"],
            "oracle_ok": report.oracle["ok"],
            "oracle_failed": report.oracle["failed"],
            "skipped_domain": report.oracle["skipped_domain"],
            "probe_wires": report.probes["wires_probed"],
            "probe_killed": report.probes["killed"],
            "benign_free_wires": len(report.probes["survivors"]),
            "output_survivors": len(report.probes["output_survivors"]),
            "mutation_catalog": report.mutations["catalog"],
            "mutation_kinds": len(report.mutations["kinds"]),
            "mutations_killed": report.mutations["killed"],
            "kill_rate": report.mutations["kill_rate"],
            "seconds": elapsed,
        }
    return rows


def run_cost_validation() -> dict:
    mb = measured_microbench()
    rows = {}
    for name in NEW_SCENARIOS:
        measured = measure_zaatar(name)
        predicted = zaatar_costs(profile_for(name), mb, BENCH_PARAMS)
        ratio = measured.prover.e2e / predicted.prover_per_instance
        rows[name] = {
            "measured_prover_s": measured.prover.e2e,
            "predicted_prover_s": predicted.prover_per_instance,
            "ratio": ratio,
            "within_tolerance": 0.2 < ratio < 30,
        }
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0, help="checker RNG seed")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every app passes with a 100%% kill rate and "
        "the new scenarios validate against the cost model",
    )
    args = parser.parse_args()

    checker_rows = run_checker(args.seed)
    print_table(
        f"Differential checker over the scenario library (seed {args.seed})",
        ["app", "oracle", "probes", "mutations", "kill rate", "time"],
        [
            [
                name,
                f"{r['oracle_ok']}/{r['oracle_cases']}",
                f"{r['probe_killed']}/{r['probe_wires']}",
                f"{r['mutations_killed']}/{r['mutation_catalog']}",
                f"{r['kill_rate']:.0%}",
                fmt_seconds(r["seconds"]),
            ]
            for name, r in checker_rows.items()
        ],
    )

    cost_rows = run_cost_validation()
    print_table(
        "Cost-model validation for the scenario extensions (Figure-3 band)",
        ["app", "measured", "predicted", "measured/predicted", "in band"],
        [
            [
                name,
                fmt_seconds(r["measured_prover_s"]),
                fmt_seconds(r["predicted_prover_s"]),
                f"{r['ratio']:.2f}x",
                "yes" if r["within_tolerance"] else "NO",
            ]
            for name, r in cost_rows.items()
        ],
    )

    for name, row in checker_rows.items():
        RESULTS[("check", name)] = row
    for name, row in cost_rows.items():
        RESULTS[("check", f"{name}_costmodel")] = row
    path = emit_results("check")
    print(f"\nwrote {path}")

    ok = all(
        r["passed"] and r["kill_rate"] == 1.0 and r["mutation_kinds"] >= 4
        for r in checker_rows.values()
    ) and all(r["within_tolerance"] for r in cost_rows.values())
    if args.check and not ok:
        print("bench_check: GATE FAILED", file=sys.stderr)
        return 1
    print(f"bench_check: {'OK' if ok else 'not ok (informational run)'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
