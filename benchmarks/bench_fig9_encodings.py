"""Figure 9: computation and proof encodings for both systems.

Paper columns: |Z_ginger|, |Z_zaatar|, |C_ginger|, |C_zaatar|,
|u_ginger|, |u_zaatar| per benchmark.  The headline: "For all
computations, Zaatar's proof vector is significantly shorter than
Ginger's", with |u_zaatar| linear in the running time and |u_ginger|
quadratic.

This bench counts the quantities from the actually-compiled constraint
systems (not formulas), at the three sweep sizes, and checks the
growth orders against the paper's complexity column.
"""

import math

import pytest

from repro.apps import ALL_APPS

from _harness import APP_ORDER, RESULTS, compiled, fmt_count, print_table, sizes_key


def test_fig9_encodings(benchmark):
    def run():
        out = {}
        for name in APP_ORDER:
            app = ALL_APPS[name]
            out[name] = [
                (dict(sizes), compiled(name, sizes_key(dict(sizes))).stats())
                for sizes in app.sweep
            ]
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name in APP_ORDER:
        for sizes, st in results[name]:
            rows.append(
                [
                    name,
                    str(sizes.get("m")),
                    fmt_count(st.z_ginger),
                    fmt_count(st.z_zaatar),
                    fmt_count(st.c_ginger),
                    fmt_count(st.c_zaatar),
                    fmt_count(st.u_ginger),
                    fmt_count(st.u_zaatar),
                    f"{st.proof_shrink_factor:.0f}x",
                ]
            )
        RESULTS[("fig9", name)] = results[name]
    print_table(
        "Figure 9: computation and proof encodings",
        ["computation", "m", "|Zg|", "|Zz|", "|Cg|", "|Cz|", "|ug|", "|uz|", "shrink"],
        rows,
    )
    for name in APP_ORDER:
        points = results[name]
        # Zaatar's proof always shorter, and the shrink factor grows
        # with size (linear vs quadratic encodings)
        shrinks = [st.proof_shrink_factor for _, st in points]
        assert all(s > 1 for s in shrinks), name
        if name != "root_finding_bisection":
            assert shrinks[-1] > shrinks[0], name
        else:
            # Bisection's dense degree-2 form makes K₂ grow quadratically
            # with m, so its shrink factor plateaus instead of growing —
            # the "relatively efficient representation under Ginger" the
            # paper calls out for exactly this benchmark (§5.2).
            assert shrinks[-1] > 0.5 * shrinks[0], name
        # |u_zaatar| grows like |C_zaatar| (linear in computation);
        # |u_ginger| grows like its square
        c = [st.c_zaatar for _, st in points]
        uz = [st.u_zaatar for _, st in points]
        ug = [st.u_ginger for _, st in points]
        slope_uz = math.log(uz[-1] / uz[0]) / math.log(c[-1] / c[0])
        slope_ug = math.log(ug[-1] / ug[0]) / math.log(c[-1] / c[0])
        assert 0.8 < slope_uz < 1.2, (name, slope_uz)
        if name == "root_finding_bisection":
            # The dense degree-2 form compiles to ONE Ginger constraint
            # whose term count grows with m² while |Z_ginger| stays
            # nearly flat — "degree-2 polynomial evaluation, for which
            # the Ginger encoding is actually very concise" (§4).  So
            # |u_ginger| does not grow quadratically here; the other
            # four benchmarks carry the quadratic-growth check.
            continue
        assert slope_ug > 1.6, (name, slope_ug)
