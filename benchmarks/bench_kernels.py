"""Kernel-plan microbench: cached NTT/division/interpolation vs cold.

Not a paper figure — this bench guards the kernel-plan layer added in
docs/PERFORMANCE.md: precomputed NTT plans, the batch-amortized divisor
inverse, and subproduct-tree reuse must (a) stay bit-identical to the
from-scratch reference kernels and (b) never be slower than them.  The
``--check`` flag turns (a) and (b) into hard failures, which is what
the CI ``kernel-bench`` job runs; the JSON artifact lands in
``benchmarks/out/BENCH_kernels.json``.

It also sweeps the field-arithmetic backends (``repro.field.backend``):
scalar vs numpy on NTT round-trips, elementwise products, and inner
products over the 64-bit field, at sizes bracketing ``--size``.  Under
``--check`` the backends must agree bit-for-bit and the numpy NTT must
beat scalar at sizes >= 2^12; the sweep lands in
``benchmarks/out/BENCH_backends.json``.

Finally it exercises the batch-axis prover path on the 128-bit modulus
(``benchmarks/out/BENCH_batch.json``): the batched H(t) pipeline must
stay bit-identical to the per-row route, and the CRT residue-plane
product must beat the object-dtype stacked-NTT route it replaces by
``BATCH_MIN_SPEEDUP`` on the fixed gate shape.

Standalone::

    PYTHONPATH=src python benchmarks/bench_kernels.py --size 4096 --reps 5 --check

or as a pytest bench like the figure benches::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -q
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import FIELD, RESULTS, emit_results, fmt_seconds, print_table

from repro import telemetry
from repro.field import GOLDILOCKS, HAVE_NUMPY, PrimeField
from repro.poly import (
    SubproductTree,
    clear_plan_caches,
    get_barycentric_weights,
    get_ntt_plan,
    intt,
    ntt,
    ntt_reference,
    plan_cache_info,
    poly_div_exact,
    poly_from_roots,
    poly_mul,
)
from repro.poly.divide import _series_inverse

#: cached kernels must be at least this close to the uncached reference
#: (generous: CI machines are noisy; locally the speedup is 1.3-2x)
CHECK_MARGIN = 1.25

#: under --check, the numpy NTT must beat scalar by at least this factor
#: at sizes >= NUMPY_NTT_MIN_SIZE (locally it is 8-10x; the margin
#: absorbs CI noise while still catching a broken vector path)
NUMPY_NTT_MIN_SPEEDUP = 2.0
NUMPY_NTT_MIN_SIZE = 4096

#: under --check, the CRT residue-plane batched product must beat the
#: object-dtype stacked-NTT route it replaces by at least this factor
#: on the gate shape below (measured 4.6-4.9x locally; the margin
#: absorbs CI noise while still catching a broken fast path)
BATCH_MIN_SPEEDUP = 4.0
BATCH_MIN_BATCH = 32
#: product-stage gate shape: p128 operand rows of width BATCH_GATE_M,
#: BATCH_GATE_BATCH rows per operand (the batch >= BATCH_MIN_BATCH the
#: issue criterion asks for; the speedup grows with both dimensions)
BATCH_GATE_M = 4096
BATCH_GATE_BATCH = 64


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bench_ntt(size: int, reps: int, rng: random.Random) -> dict:
    """Plan-backed forward+inverse transform vs the reference kernels."""
    a = [rng.randrange(FIELD.p) for _ in range(size)]

    clear_plan_caches()
    t0 = time.perf_counter()
    get_ntt_plan(FIELD, size)  # cold: builds twiddles + swap schedule
    plan_build = time.perf_counter() - t0

    cached = _best_of(lambda: intt(FIELD, ntt(FIELD, a)), reps)
    uncached = _best_of(
        lambda: ntt_reference(FIELD, ntt_reference(FIELD, a), invert=True), reps
    )
    identical = ntt(FIELD, a) == ntt_reference(FIELD, a) and ntt(
        FIELD, a, invert=True
    ) == ntt_reference(FIELD, a, invert=True)
    return {
        "size": size,
        "plan_build_seconds": plan_build,
        "cached_seconds": cached,
        "uncached_seconds": uncached,
        "speedup": uncached / cached if cached else float("inf"),
        "bit_identical": identical,
    }


def _bench_division(size: int, reps: int, rng: random.Random) -> dict:
    """Exact division with the cached reversed-divisor inverse vs without.

    Mirrors the prover's step 3: P_w(t) / D(t) where D is fixed across a
    batch and only the numerator changes per instance.
    """
    m = size // 2
    divisor = poly_from_roots(FIELD, list(range(1, m + 1)))
    quotient = [rng.randrange(FIELD.p) for _ in range(m)]
    quotient[-1] = quotient[-1] or 1
    numerator = poly_mul(FIELD, divisor, quotient)
    qlen = len(numerator) - len(divisor) + 1

    uncached = _best_of(lambda: poly_div_exact(FIELD, numerator, divisor), reps)
    t0 = time.perf_counter()
    inv = _series_inverse(FIELD, list(reversed(divisor)), qlen)
    inverse_build = time.perf_counter() - t0
    cached = _best_of(
        lambda: poly_div_exact(FIELD, numerator, divisor, inv_rev_den=inv), reps
    )
    identical = poly_div_exact(
        FIELD, numerator, divisor, inv_rev_den=inv
    ) == poly_div_exact(FIELD, numerator, divisor)
    return {
        "degree": len(divisor) - 1,
        "inverse_build_seconds": inverse_build,
        "cached_seconds": cached,
        "uncached_seconds": uncached,
        "speedup": uncached / cached if cached else float("inf"),
        "bit_identical": identical,
    }


def _bench_interpolation(size: int, reps: int, rng: random.Random) -> dict:
    """Cold tree build + interpolate vs reinterpolation through a warm tree."""
    points = list(range(1, size // 4 + 1))
    values = [rng.randrange(FIELD.p) for _ in points]

    def cold():
        clear_plan_caches()
        return SubproductTree(FIELD, points).interpolate(values)

    cold_seconds = _best_of(cold, max(1, reps // 2))
    clear_plan_caches()
    tree = SubproductTree(FIELD, points)
    tree.interpolate(values)  # populate the per-tree caches
    warm_seconds = _best_of(lambda: tree.interpolate(values), reps)
    identical = tree.interpolate(values) == cold()
    return {
        "points": len(points),
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds else float("inf"),
        "bit_identical": identical,
    }


def _bench_counters(size: int) -> dict:
    """Plan hit/miss accounting over a simulated two-instance batch."""
    clear_plan_caches()
    tracer = telemetry.enable()
    try:
        with telemetry.span("bench.kernels.counters"):
            for _ in range(2):  # two "instances" sharing one plan set
                a = list(range(size))
                intt(FIELD, ntt(FIELD, a))
                get_barycentric_weights(FIELD, size // 4)
    finally:
        telemetry.disable()
    totals = tracer.total_counters()
    return {
        "plan_hits": int(totals.get("poly.plan_hits", 0)),
        "plan_misses": int(totals.get("poly.plan_misses", 0)),
        "cache_entries": plan_cache_info(),
    }


def _bench_backends(size: int, reps: int, rng: random.Random) -> dict:
    """Scalar vs numpy field backends on the batch-shaped kernels.

    One row per vector size (bracketing ``--size``); each op records
    both backends' best-of-``reps`` time and whether their outputs are
    bit-identical.  Runs scalar-only (with ``numpy_seconds: None``)
    when numpy is absent.
    """
    scalar_field = PrimeField(GOLDILOCKS, check_prime=False, backend="scalar")
    numpy_field = (
        PrimeField(GOLDILOCKS, check_prime=False, backend="numpy")
        if HAVE_NUMPY
        else None
    )
    p = scalar_field.p
    sizes = sorted({max(256, size // 4), size, size * 4})
    ops = {
        "ntt_roundtrip": lambda f, a, b: intt(f, ntt(f, a)),
        "hadamard": lambda f, a, b: f.hadamard(a, b),
        "inner_product": lambda f, a, b: f.inner_product(a, b),
    }
    rows = []
    for n in sizes:
        a = [rng.randrange(p) for _ in range(n)]
        b = [rng.randrange(p) for _ in range(n)]
        get_ntt_plan(scalar_field, n)  # warm the shared plan out of the timings
        row: dict = {"size": n}
        for name, op in ops.items():
            scalar_out = op(scalar_field, a, b)
            scalar_seconds = _best_of(lambda: op(scalar_field, a, b), reps)
            entry = {
                "scalar_seconds": scalar_seconds,
                "numpy_seconds": None,
                "speedup": None,
                "bit_identical": None,
            }
            if numpy_field is not None:
                numpy_out = op(numpy_field, a, b)
                numpy_seconds = _best_of(lambda: op(numpy_field, a, b), reps)
                entry["numpy_seconds"] = numpy_seconds
                entry["speedup"] = (
                    scalar_seconds / numpy_seconds if numpy_seconds else float("inf")
                )
                entry["bit_identical"] = numpy_out == scalar_out
            row[name] = entry
        rows.append(row)
    return {"numpy_available": HAVE_NUMPY, "sizes": rows}


def _bench_batch(size: int, reps: int, rng: random.Random) -> dict:
    """Batch-axis prover pipeline on the 128-bit modulus: per-row vs 2-D.

    Mirrors the QAP prover's roots-mode H(t) construction — interpolate
    three evaluation rows, multiply, subtract, divide by ``t^m − 1`` —
    once per row (the object-dtype route big moduli used to be stuck
    on) and once as stacked 2-D kernels (one shared plan; the multiply
    drops into the CRT residue planes).  ``evals_c = a ∘ b`` makes every
    row exactly divisible, so the telescoped division runs end to end.
    """
    from repro.field import NAMED_FIELDS
    from repro.poly import (
        interpolate_at_roots_of_unity,
        mat_interpolate_at_roots_of_unity,
        mat_poly_mul,
        pad_rows,
        poly_sub,
        trim,
    )
    from repro.qap.prover import (
        _divide_by_subgroup_vanishing,
        _mat_divide_by_subgroup_vanishing,
    )

    m = max(256, size // 2)
    field = PrimeField(NAMED_FIELDS["p128"], check_prime=False, backend="numpy")
    p = field.p

    def sequential(evals):
        out = []
        for ea, eb, ec in evals:
            pa = interpolate_at_roots_of_unity(field, ea)
            pb = interpolate_at_roots_of_unity(field, eb)
            pc = interpolate_at_roots_of_unity(field, ec)
            p_w = poly_sub(field, poly_mul(field, pa, pb), pc)
            out.append(_divide_by_subgroup_vanishing(field, p_w, m))
        return out

    def batched(evals):
        ra = mat_interpolate_at_roots_of_unity(field, [e[0] for e in evals])
        rb = mat_interpolate_at_roots_of_unity(field, [e[1] for e in evals])
        rc = mat_interpolate_at_roots_of_unity(field, [e[2] for e in evals])
        prod = mat_poly_mul(field, ra, rb)
        p_rows = field.mat_sub(pad_rows(prod, 2 * m), pad_rows(rc, 2 * m))
        return _mat_divide_by_subgroup_vanishing(field, p_rows, m)

    rows = []
    for batch in (1, 8, 32):
        evals = []
        for _ in range(batch):
            ea = [rng.randrange(p) for _ in range(m)]
            eb = [rng.randrange(p) for _ in range(m)]
            evals.append((ea, eb, field.hadamard(ea, eb)))
        seq_out = sequential(evals)  # also warms the shared NTT plans
        bat_out = batched(evals)
        # batched quotients carry fixed-width padding; values must agree
        identical = [trim(list(r)) for r in bat_out] == [
            trim(list(r)) for r in seq_out
        ]
        seq_reps = reps if batch == 1 else 1  # the slow route: ~seconds/rep
        seq_seconds = _best_of(lambda: sequential(evals), seq_reps)
        bat_seconds = _best_of(lambda: batched(evals), reps)
        rows.append(
            {
                "batch": batch,
                "sequential_seconds": seq_seconds,
                "batched_seconds": bat_seconds,
                "per_instance_speedup": (
                    seq_seconds / bat_seconds if bat_seconds else float("inf")
                ),
                "bit_identical": identical,
            }
        )
    return {
        "modulus": "p128",
        "m": m,
        "numpy_available": HAVE_NUMPY,
        "batches": rows,
        "product": _bench_batch_product(reps, rng),
    }


def _bench_batch_product(reps: int, rng: random.Random) -> dict | None:
    """The gated product stage: CRT residue planes vs object-dtype NTTs.

    Isolates the multiply that :func:`repro.poly.batch.mat_poly_mul`
    routes — the CRT fast path versus the stacked object-dtype
    transforms the same call falls back to when the fast path declines.
    This is the stage the batch-axis work accelerates (interpolation
    and division bracket it identically on both routes), measured on
    the fixed gate shape rather than ``--size`` so the CI floor always
    tests the same workload.
    """
    if not HAVE_NUMPY:
        return None
    from repro.field import NAMED_FIELDS
    from repro.poly import get_ntt_plan, mat_poly_mul, pad_rows

    m, batch = BATCH_GATE_M, BATCH_GATE_BATCH
    field = PrimeField(NAMED_FIELDS["p128"], check_prime=False, backend="numpy")
    p = field.p
    rows_a = [[rng.randrange(p) for _ in range(m)] for _ in range(batch)]
    rows_b = [[rng.randrange(p) for _ in range(m)] for _ in range(batch)]
    out_len = 2 * m - 1
    size = 2
    while size < out_len:
        size <<= 1

    def object_route():
        plan = get_ntt_plan(field, size)
        fa = field.mat_transform(plan, pad_rows(rows_a, size))
        fb = field.mat_transform(plan, pad_rows(rows_b, size))
        out = field.mat_transform(plan, field.mat_hadamard(fa, fb), invert=True)
        return [row[:out_len] for row in out]

    crt_out = mat_poly_mul(field, rows_a, rows_b)  # warm plane tables
    object_out = object_route()  # warm the shared plan
    crt_seconds = _best_of(lambda: mat_poly_mul(field, rows_a, rows_b), min(reps, 3))
    object_seconds = _best_of(object_route, min(reps, 2))
    return {
        "modulus": "p128",
        "m": m,
        "batch": batch,
        "object_seconds": object_seconds,
        "crt_seconds": crt_seconds,
        "speedup": object_seconds / crt_seconds if crt_seconds else float("inf"),
        "bit_identical": crt_out == object_out,
    }


def run_bench(size: int, reps: int) -> dict:
    rng = random.Random(0xC0DE)
    out = {
        "ntt": _bench_ntt(size, reps, rng),
        "division": _bench_division(size, reps, rng),
        "interpolation": _bench_interpolation(size, reps, rng),
        "counters": _bench_counters(size),
        "backends": _bench_backends(size, reps, rng),
        "batch": _bench_batch(size, reps, rng),
    }
    for label, row in out.items():
        if label == "backends":
            RESULTS[("backends", "sweep")] = row
        elif label == "batch":
            RESULTS[("batch", "sweep")] = row
        else:
            RESULTS[("kernels", label)] = row
    return out


def check(results: dict) -> list[str]:
    """The CI guard: bit-identity always; cached never slower (+margin)."""
    failures = []
    for section in ("ntt", "division", "interpolation"):
        row = results[section]
        if not row["bit_identical"]:
            failures.append(f"{section}: cached result differs from reference")
        fast = row.get("cached_seconds", row.get("warm_seconds"))
        slow = row.get("uncached_seconds", row.get("cold_seconds"))
        if fast > slow * CHECK_MARGIN:
            failures.append(
                f"{section}: cached path {fast:.6f}s slower than "
                f"uncached {slow:.6f}s (margin {CHECK_MARGIN}x)"
            )
    counters = results["counters"]
    if counters["plan_hits"] == 0:
        failures.append("counters: second instance produced no plan hits")
    if counters["plan_misses"] == 0:
        failures.append("counters: cold caches produced no plan misses")
    for row in results["backends"]["sizes"]:
        n = row["size"]
        for op in ("ntt_roundtrip", "hadamard", "inner_product"):
            entry = row[op]
            if entry["numpy_seconds"] is None:
                continue  # numpy absent: scalar-only run, nothing to compare
            if not entry["bit_identical"]:
                failures.append(f"backends: {op} at n={n} differs scalar vs numpy")
            if op == "ntt_roundtrip" and n >= NUMPY_NTT_MIN_SIZE:
                if entry["speedup"] < NUMPY_NTT_MIN_SPEEDUP:
                    failures.append(
                        f"backends: numpy NTT at n={n} only "
                        f"{entry['speedup']:.2f}x over scalar "
                        f"(need {NUMPY_NTT_MIN_SPEEDUP}x)"
                    )
    for row in results["batch"]["batches"]:
        if not row["bit_identical"]:
            failures.append(
                f"batch: batched H pipeline differs at batch={row['batch']}"
            )
    product = results["batch"]["product"]
    if product is not None:
        if not product["bit_identical"]:
            failures.append(
                "batch: CRT product differs from the object-dtype route "
                f"at m={product['m']} batch={product['batch']}"
            )
        if product["batch"] >= BATCH_MIN_BATCH and (
            product["speedup"] < BATCH_MIN_SPEEDUP
        ):
            failures.append(
                f"batch: CRT product at m={product['m']} "
                f"batch={product['batch']} only {product['speedup']:.2f}x "
                f"over the object-dtype route (need {BATCH_MIN_SPEEDUP}x)"
            )
    return failures


def _report(results: dict) -> None:
    rows = []
    for section in ("ntt", "division", "interpolation"):
        row = results[section]
        fast = row.get("cached_seconds", row.get("warm_seconds"))
        slow = row.get("uncached_seconds", row.get("cold_seconds"))
        rows.append(
            [
                section,
                fmt_seconds(slow),
                fmt_seconds(fast),
                f"{row['speedup']:.2f}x",
                "yes" if row["bit_identical"] else "NO",
            ]
        )
    print_table(
        "kernel plans: cached vs from-scratch",
        ["kernel", "uncached", "cached", "speedup", "bit-identical"],
        rows,
    )
    counters = results["counters"]
    print(
        f"\nplan cache over 2 instances: {counters['plan_hits']} hits / "
        f"{counters['plan_misses']} misses ({counters['cache_entries']})"
    )

    backends = results["backends"]
    if not backends["numpy_available"]:
        print("\nfield backends: numpy not installed, scalar-only run")
        return
    rows = []
    for row in backends["sizes"]:
        for op in ("ntt_roundtrip", "hadamard", "inner_product"):
            entry = row[op]
            rows.append(
                [
                    f"{op} n={row['size']}",
                    fmt_seconds(entry["scalar_seconds"]),
                    fmt_seconds(entry["numpy_seconds"]),
                    f"{entry['speedup']:.2f}x",
                    "yes" if entry["bit_identical"] else "NO",
                ]
            )
    print()
    print_table(
        "field backends: scalar vs numpy (goldilocks)",
        ["kernel", "scalar", "numpy", "speedup", "bit-identical"],
        rows,
    )

    batch = results["batch"]
    rows = [
        [
            f"batch={row['batch']}",
            fmt_seconds(row["sequential_seconds"]),
            fmt_seconds(row["batched_seconds"]),
            f"{row['per_instance_speedup']:.2f}x",
            "yes" if row["bit_identical"] else "NO",
        ]
        for row in batch["batches"]
    ]
    print()
    print_table(
        f"batched H(t) pipeline ({batch['modulus']}, m={batch['m']}): "
        "per-row vs 2-D + CRT",
        ["batch", "per-row", "batched", "speedup", "bit-identical"],
        rows,
    )
    product = batch.get("product")
    if product is not None:
        print(
            f"\nproduct stage gate ({product['modulus']}, m={product['m']}, "
            f"batch={product['batch']}): object-dtype "
            f"{fmt_seconds(product['object_seconds'])} vs CRT "
            f"{fmt_seconds(product['crt_seconds'])} — "
            f"{product['speedup']:.2f}x, bit-identical: "
            f"{'yes' if product['bit_identical'] else 'NO'}"
        )


def test_kernels(benchmark):
    """Pytest entry point, shaped like the figure benches."""
    results = benchmark.pedantic(lambda: run_bench(4096, 3), rounds=1, iterations=1)
    _report(results)
    emit_results("kernels")
    emit_results("backends")
    emit_results("batch")
    assert not check(results)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--size", type=int, default=4096, help="NTT size (power of two)")
    parser.add_argument("--reps", type=int, default=5, help="timing repetitions (best-of)")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) unless cached kernels are bit-identical and not slower",
    )
    args = parser.parse_args(argv)
    if args.size < 4 or args.size & (args.size - 1):
        parser.error("--size must be a power of two >= 4")
    results = run_bench(args.size, args.reps)
    _report(results)
    path = emit_results("kernels")
    backend_path = emit_results("backends")
    batch_path = emit_results("batch")
    print(f"\nresults written to {path}, {backend_path} and {batch_path}")
    if args.check:
        failures = check(results)
        for f in failures:
            print(f"CHECK FAILED: {f}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
