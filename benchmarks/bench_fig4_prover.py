"""Figure 4: per-instance prover running time, Zaatar vs Ginger.

Paper: "Zaatar's theoretical refinements improve the running time by
1-6 orders of magnitude compared to the estimated costs of Ginger";
root finding's gap is the smallest (1-2 orders) because its dense
degree-2 form is "relatively efficient under Ginger".

Zaatar is *measured* (full argument run, scaled-down default sizes);
Ginger is *estimated from the Figure-3 cost model with this machine's
microbenchmark constants* — exactly the paper's own methodology (§5.1:
"we use estimates, rather than empirics, because the computations
would be too expensive under Ginger").
"""

import pytest

from repro.costmodel import ginger_costs

from _harness import (
    APP_ORDER,
    BENCH_PARAMS,
    RESULTS,
    fmt_seconds,
    measure_zaatar,
    measured_microbench,
    orders_of_magnitude,
    print_table,
    profile_for,
)


def test_fig4_prover_times(benchmark):
    def run():
        rows = []
        for name in APP_ORDER:
            measured = measure_zaatar(name)
            profile = profile_for(name)
            ginger = ginger_costs(profile, measured_microbench(), BENCH_PARAMS)
            rows.append((name, measured.prover.e2e, ginger.prover_per_instance))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = []
    gaps = {}
    for name, zaatar_s, ginger_s in rows:
        gap = orders_of_magnitude(ginger_s / zaatar_s)
        gaps[name] = gap
        RESULTS[("fig4", name)] = (zaatar_s, ginger_s, gap)
        table.append(
            [name, fmt_seconds(zaatar_s), fmt_seconds(ginger_s), f"{gap:.1f}"]
        )
    print_table(
        "Figure 4: per-instance prover time (Zaatar measured, Ginger modeled)",
        ["computation", "Zaatar", "Ginger (est.)", "orders of magnitude"],
        table,
    )
    # Shape assertions: Zaatar wins everywhere; root finding's gap is
    # the smallest of the five (the paper's §5.2 observation).
    assert all(g > 0 for g in gaps.values()), gaps
    assert gaps["root_finding_bisection"] == min(gaps.values()), gaps
