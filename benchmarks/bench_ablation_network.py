"""Ablation: network costs, full queries vs the §A.1 seed optimization.

"The network costs are (a) a full query sent from V to P, and (b) a
random seed from which V and P derive the PCP queries pseudorandomly."
This bench tallies actual bytes on the wire in both transports for a
real benchmark computation and projects the gap at the paper's
production soundness parameters (where ρ·ℓ' = 992 query vectors of
length |u| would otherwise ship).
"""

import pytest

from repro.apps import ALL_APPS
from repro.argument import ArgumentConfig, ZaatarArgument, transport_costs
from repro.argument.wire import element_width
from repro.pcp import PAPER_PARAMS, SoundnessParams

from _harness import BENCH_PARAMS, FIELD, compiled, print_table, sizes_key

APP = "longest_common_subsequence"
SIZES = {"m": 6}


def test_network_costs(benchmark):
    def run():
        import random

        app = ALL_APPS[APP]
        prog = compiled(APP, sizes_key(SIZES))
        rng = random.Random(31)
        batch = [app.generate_inputs(rng, SIZES) for _ in range(2)]
        out = {}
        for mode in ("full", "seeded"):
            arg = ZaatarArgument(prog, ArgumentConfig(params=BENCH_PARAMS))
            tally, ok = transport_costs(arg, batch, mode=mode)
            assert ok
            out[mode] = tally
        return prog, out

    prog, tallies = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for mode, tally in tallies.items():
        rows.append(
            [
                mode,
                f"{tally.verifier_to_prover:,} B",
                f"{tally.prover_to_verifier:,} B",
                f"{tally.components.get('queries', 0):,} B",
                f"{tally.components.get('seed', 0) + tally.components.get('consistency query t', 0):,} B",
            ]
        )
    print_table(
        f"Ablation: transport bytes ({APP}, batch of 2, bench soundness params)",
        ["mode", "V->P", "P->V", "explicit queries", "seed + t"],
        rows,
    )

    # projection at production parameters: queries alone would be
    # ρ·ℓ'·|u| elements in full mode, vs 32 B + one |u| vector seeded
    u_len = prog.quadratic.proof_vector_length()
    width = element_width(FIELD)
    full_queries = PAPER_PARAMS.rho * PAPER_PARAMS.zaatar_queries_per_repetition() * u_len * width
    seeded_queries = 32 + u_len * width
    print(
        f"\nprojection at paper params (rho_lin=20, rho=8): explicit queries "
        f"{full_queries / 1e6:.1f} MB vs seeded {seeded_queries / 1e3:.1f} KB "
        f"({full_queries / seeded_queries:.0f}x)"
    )
    full = tallies["full"]
    seeded = tallies["seeded"]
    assert seeded.verifier_to_prover < full.verifier_to_prover
    assert seeded.prover_to_verifier == full.prover_to_verifier
    assert full_queries / seeded_queries > 100
