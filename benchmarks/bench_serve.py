"""Gateway throughput bench: multi-tenant serving vs single-session prover.

Not a paper figure — this bench guards the multi-tenant gateway
(``repro.argument.serve``) against the deployment it replaces.  The §5
breakeven economics want one prover amortized over many verifiers and
many programs; the single-program, single-session ``ProverServer``
forces concurrent verifiers into busy-shed exponential backoff, and
rebuilds the QAP + query schedule from scratch for every session.  The
gateway admits the same load into a bounded queue (so the prover core
never idles while clients sleep out their backoff), dispatches by
program hash, and serves every session from the registry's pre-warmed
artifacts and schedule LRU.

Scenarios, measured at ``--clients`` concurrent verifiers over
``--programs`` hosted programs for ``--duration`` seconds each:

* ``baseline_single_session`` — the same gateway code with admission
  turned off (``max_sessions=1, accept_queue=0``): one session at a
  time, overflow shed immediately.  Isolates exactly what the
  admission layer buys.
* ``baseline_per_program_servers`` (informational) — one
  ``ProverServer(max_sessions=1)`` per program, the deployment the
  gateway replaces; verifiers ride the stock ``RetryPolicy`` through
  the busy-shed storms.
* ``gateway`` — one ``GatewayServer`` hosting every program with
  ``max_sessions == clients`` handler lanes and a bounded accept
  queue; busy frames (if any) carry ``retry_after`` hints the client
  honors.

``--check`` (the CI gate) fails unless the gateway clears
``SERVE_MIN_SPEEDUP``× the baseline's sessions/sec.  The artifact
lands in ``benchmarks/out/BENCH_serve.json``.

Standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py --duration 4 --check
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import BENCH_PARAMS, FIELD, RESULTS, emit_results, print_table

from repro.argument import (
    ArgumentConfig,
    GatewayServer,
    ProgramRegistry,
    ProtocolViolation,
    ProverServer,
    RetryPolicy,
    verify_remote,
)
from repro.compiler import compile_program

#: the acceptance floor: admission queueing + warm registry must buy at
#: least this over single-session-at-a-time serving under the same load
SERVE_MIN_SPEEDUP = 4.0

CONFIG = ArgumentConfig(params=BENCH_PARAMS)


def _build_dotp(b):
    xs = b.inputs(4)
    b.output(xs[0] * xs[1] + xs[2] * xs[3])


def _build_horner(b):
    x = b.input()
    acc = b.constant(1)
    for _ in range(4):
        acc = acc * x + x
    b.output(acc)


def hosted_programs(count: int):
    """The bench's program fleet (tiny, so session overheads dominate)."""
    builders = [("dotp", _build_dotp), ("horner", _build_horner)]
    programs = []
    for i in range(count):
        name, builder = builders[i % len(builders)]
        programs.append(compile_program(FIELD, builder, name=f"{name}{i}"))
    return programs


def _inputs_for(program) -> list[int]:
    return list(range(3, 3 + program.num_inputs))


class _LoadResult:
    """Per-scenario tallies accumulated across client threads."""

    def __init__(self):
        self.lock = threading.Lock()
        self.latencies: list[float] = []
        self.shed = 0
        self.errors = 0


def _client_loop(result, stop, program, address, seed):
    attempt = 0
    while not stop.is_set():
        attempt += 1
        retry = RetryPolicy(
            max_attempts=12, base_delay=0.05, max_delay=2.0, seed=seed * 1009 + attempt
        )
        start = time.perf_counter()
        try:
            outcome = verify_remote(
                program, [_inputs_for(program)], address, CONFIG, retry=retry
            )
            assert outcome.all_accepted
        except ProtocolViolation as exc:
            with result.lock:
                if exc.code in ("busy", "io", "shutting-down"):
                    result.shed += 1
                else:
                    result.errors += 1
            continue
        elapsed = time.perf_counter() - start
        with result.lock:
            result.latencies.append(elapsed)


def run_load(addresses, programs, clients: int, duration: float) -> dict:
    """Drive ``clients`` concurrent verifiers round-robin over programs.

    ``addresses[i]`` is where program ``i`` is served (the same address
    repeated models the gateway; distinct addresses the per-program
    baseline).  Returns the scenario's result row.
    """
    result = _LoadResult()
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=_client_loop,
            args=(
                result,
                stop,
                programs[i % len(programs)],
                addresses[i % len(addresses)],
                i,
            ),
            daemon=True,
        )
        for i in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=60)
    elapsed = time.perf_counter() - start
    ordered = sorted(result.latencies)

    def quantile(q: float) -> float | None:
        if not ordered:
            return None
        return ordered[min(int(q * len(ordered)), len(ordered) - 1)]

    return {
        "sessions_ok": len(ordered),
        "sheds": result.shed,
        "errors": result.errors,
        "elapsed_seconds": elapsed,
        "sessions_per_second": len(ordered) / elapsed if elapsed else 0.0,
        "latency_p50_seconds": quantile(0.50),
        "latency_p99_seconds": quantile(0.99),
    }


def bench_baseline(programs, clients: int, duration: float) -> dict:
    """The gateway with admission off: one session at a time, no queue."""
    registry = ProgramRegistry()
    for prog in programs:
        registry.register(prog, CONFIG)
    with GatewayServer(registry, max_sessions=1, accept_queue=0) as gateway:
        # prime once so first-session compile noise is out of the window
        verify_remote(
            programs[0], [_inputs_for(programs[0])], gateway.address, CONFIG
        )
        return run_load([gateway.address], programs, clients, duration)


def bench_per_program_servers(programs, clients: int, duration: float) -> dict:
    """One single-session ProverServer per program (the old deployment)."""
    servers = [
        ProverServer(prog, CONFIG, max_sessions=1).start() for prog in programs
    ]
    try:
        for prog, server in zip(programs, servers):
            verify_remote(prog, [_inputs_for(prog)], server.address, CONFIG)
        return run_load(
            [server.address for server in servers], programs, clients, duration
        )
    finally:
        for server in servers:
            server.close()


def bench_gateway(programs, clients: int, duration: float) -> dict:
    """One gateway hosting every program, admission-queued."""
    registry = ProgramRegistry()
    for prog in programs:
        registry.register(prog, CONFIG)
    with GatewayServer(
        registry, max_sessions=clients, accept_queue=2 * clients
    ) as gateway:
        verify_remote(
            programs[0], [_inputs_for(programs[0])], gateway.address, CONFIG
        )
        row = run_load([gateway.address], programs, clients, duration)
        row["schedule_cache_hits"] = gateway.metrics.counter_value(
            "gateway.schedule_cache_hits"
        )
    return row


def run_bench(clients: int, num_programs: int, duration: float) -> dict:
    programs = hosted_programs(num_programs)
    baseline = bench_baseline(programs, clients, duration)
    per_program = bench_per_program_servers(programs, clients, duration)
    gateway = bench_gateway(programs, clients, duration)
    speedup = (
        gateway["sessions_per_second"] / baseline["sessions_per_second"]
        if baseline["sessions_per_second"]
        else float("inf")
    )
    summary = {
        "clients": clients,
        "programs": num_programs,
        "duration_seconds": duration,
        "speedup": speedup,
    }
    RESULTS[("serve", "baseline_single_session")] = baseline
    RESULTS[("serve", "baseline_per_program_servers")] = per_program
    RESULTS[("serve", "gateway")] = gateway
    RESULTS[("serve", "summary")] = summary
    return {
        "baseline": baseline,
        "per_program": per_program,
        "gateway": gateway,
        "summary": summary,
    }


def _fmt(value) -> str:
    if value is None:
        return "-"
    return f"{value:.3f}" if isinstance(value, float) else str(value)


def _report(results: dict) -> None:
    rows = []
    for label in ("baseline", "per_program", "gateway"):
        row = results[label]
        rows.append(
            [
                label,
                _fmt(row["sessions_per_second"]),
                str(row["sessions_ok"]),
                str(row["sheds"]),
                _fmt(row["latency_p50_seconds"]),
                _fmt(row["latency_p99_seconds"]),
            ]
        )
    print_table(
        "gateway vs single-session serving",
        ["scenario", "sessions/s", "ok", "sheds", "p50 s", "p99 s"],
        rows,
    )
    print(f"\nspeedup: {results['summary']['speedup']:.2f}x (floor {SERVE_MIN_SPEEDUP}x)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8, help="concurrent verifiers")
    parser.add_argument("--programs", type=int, default=2, help="hosted programs")
    parser.add_argument(
        "--duration", type=float, default=4.0, help="seconds of load per scenario"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"fail (exit 1) unless the gateway clears {SERVE_MIN_SPEEDUP}x",
    )
    args = parser.parse_args(argv)
    results = run_bench(args.clients, args.programs, args.duration)
    _report(results)
    path = emit_results("serve")
    print(f"\nresults written to {path}")
    errors = sum(
        results[label]["errors"] for label in ("baseline", "per_program", "gateway")
    )
    if errors:
        print("CHECK FAILED: unexpected session errors under load", file=sys.stderr)
        return 1
    if args.check and results["summary"]["speedup"] < SERVE_MIN_SPEEDUP:
        print(
            f"CHECK FAILED: speedup {results['summary']['speedup']:.2f}x "
            f"< {SERVE_MIN_SPEEDUP}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
