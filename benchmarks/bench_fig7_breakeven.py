"""Figure 7: breakeven batch sizes, Zaatar vs Ginger.

Paper: "Zaatar's breakeven batch sizes are several orders of magnitude
smaller than Ginger's ... the verifier can batch-verify a plausibly
small set (thousands) of computations and still gain" — because the
verifier's query-setup cost is proportional to the proof-vector length
(|u_zaatar| linear vs |u_ginger| quadratic in the computation), and
§2.2's breakeven is the β at which that setup amortizes below local
execution.

Two variants are produced:

1. **Paper-scale projection** (the headline assertions): the paper's
   own Figure-9 encoding formulas at the §5.2 sizes and Figure-5 local
   times, pushed through our Figure-3 cost model with the paper's §5.1
   microbenchmark constants.  A pure-Python prover cannot *measure* at
   those sizes; the paper itself estimates Ginger this way.
2. **This machine**: our actually-compiled constraint systems at
   compile-feasible "fig7 sizes" with this machine's measured
   microbench constants and measured local execution.
"""

import math

import pytest

from repro.apps import ALL_APPS
from repro.costmodel import (
    PAPER_MICROBENCH_128,
    ComputationProfile,
    breakeven_batch_size,
    ginger_costs,
    zaatar_costs,
)
from repro.pcp import PAPER_PARAMS

from _harness import (
    APP_ORDER,
    RESULTS,
    compiled,
    fmt_count,
    local_seconds,
    measured_microbench,
    orders_of_magnitude,
    paper_scale_profile,
    print_table,
    sizes_key,
)

#: compile-feasible sizes for the this-machine variant
FIG7_SIZES = {
    "pam_clustering": {"m": 10, "d": 16},
    "root_finding_bisection": {"m": 64, "L": 8, "num_bits": 8},
    "all_pairs_shortest_path": {"m": 8},
    "fannkuch": {"m": 32, "n": 5},
    "longest_common_subsequence": {"m": 24},
}


def _breakevens(profiles, mb):
    out = {}
    for name, profile in profiles.items():
        z = breakeven_batch_size(
            zaatar_costs(profile, mb, PAPER_PARAMS), profile.local_seconds
        )
        g = breakeven_batch_size(
            ginger_costs(profile, mb, PAPER_PARAMS), profile.local_seconds
        )
        out[name] = (z, g, profile.local_seconds)
    return out


def test_fig7_breakeven(benchmark):
    def run():
        paper_profiles = {name: paper_scale_profile(name) for name in APP_ORDER}
        local_profiles = {}
        for name in APP_ORDER:
            sizes = FIG7_SIZES[name]
            app = ALL_APPS[name]
            prog = compiled(name, sizes_key(sizes))
            local_profiles[name] = ComputationProfile(
                stats=prog.stats(),
                local_seconds=local_seconds(app, sizes, repeats=20),
                num_inputs=prog.num_inputs,
                num_outputs=prog.num_outputs,
            )
        return {
            "paper-scale projection": _breakevens(paper_profiles, PAPER_MICROBENCH_128),
            "this machine": _breakevens(local_profiles, measured_microbench()),
        }

    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    for label, results in variants.items():
        rows = []
        for name in APP_ORDER:
            z, g, local = results[name]
            gap = f"{orders_of_magnitude(g.batch_size / z.batch_size):.1f}"
            rows.append(
                [
                    name,
                    f"{local * 1e3:.2f} ms",
                    fmt_count(z.batch_size),
                    fmt_count(g.batch_size),
                    gap,
                ]
            )
        print_table(
            f"Figure 7: breakeven batch sizes — {label}",
            ["computation", "local", "Zaatar", "Ginger", "orders of magnitude"],
            rows,
        )
    paper_variant = variants["paper-scale projection"]
    RESULTS[("fig7", "paper-scale")] = paper_variant
    for name in APP_ORDER:
        z, g, _ = paper_variant[name]
        assert z.feasible and g.feasible, name
        gap = g.batch_size / z.batch_size
        if name == "root_finding_bisection":
            # the Ginger-friendly benchmark: ~1 order of magnitude
            # (matches Figure 7, where its bars sit closest together)
            assert gap > 5, (name, gap)
        else:
            # the headline: several orders of magnitude apart
            assert gap > 1e3, (name, z.batch_size, g.batch_size)
    # PAM (the large-local benchmark): Zaatar batches are "plausibly
    # small — thousands" (§1)
    z_pam, _, _ = paper_variant["pam_clustering"]
    assert z_pam.batch_size < 1e5
    # this-machine variant: Zaatar no worse than Ginger everywhere
    for name in APP_ORDER:
        z, g, _ = variants["this machine"][name]
        assert z.batch_size <= g.batch_size, name
