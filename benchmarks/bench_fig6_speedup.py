"""Figure 6: distributed-prover speedups (PAM and all-pairs shortest path).

Paper: batches of β=60 distributed over up to 60 cores (+GPUs);
"Zaatar's prover achieves near-linear speedup as it gets more hardware
resources" and "GPU acceleration improves per-instance latency by
about 20%".

Substitution (DESIGN.md): this environment exposes a single CPU core
and no GPU, so the multi-machine configurations are *modeled* from
measured per-instance latencies — distribution of a β-instance batch
over W independent workers has latency ceil(β/W)·t_instance (instances
are embarrassingly parallel; the multiprocess fan-out itself is
implemented in ``repro.argument.parallel`` and validated functionally
by the test suite, plus measured here when >1 core is available).
GPU configurations scale the measured crypto phase by the paper's ≈20%
per-instance latency observation.
"""

import math
import os
import time

import pytest

from _harness import RESULTS, emit_results, measure_zaatar, print_table

#: measured GPU gain from the paper (§5.2): ~20% of per-instance latency
GPU_CRYPTO_LATENCY_FACTOR = 0.8

CASES = {
    "pam_clustering": {"m": 4, "d": 4},
    "all_pairs_shortest_path": {"m": 4},
}
BATCH = 60  # the paper's β
WORKER_COUNTS = [4, 15, 20, 30, 60]  # the paper's configurations


def test_fig6_speedup(benchmark):
    def run():
        out = {}
        for name, sizes in CASES.items():
            measured = measure_zaatar(name, sizes)
            out[name] = measured.prover
        return out

    prover_stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    speedups = {}
    for name, prover in prover_stats.items():
        t_instance = prover.e2e
        crypto_fraction = prover.crypto_ops / t_instance if t_instance else 0
        serial_latency = BATCH * t_instance
        for workers in WORKER_COUNTS:
            batch_latency = math.ceil(BATCH / workers) * t_instance
            speedup = serial_latency / batch_latency
            speedups[(name, workers)] = speedup
            RESULTS[("fig6", f"{name}/{workers}C")] = speedup
            rows.append([name, f"{workers}C", f"{speedup:.1f}x", "modeled from measured t_instance"])
            # paired GPU configuration (paper runs 15C+15G, 30C+30G)
            gpu_instance = t_instance * (
                1 - crypto_fraction * (1 - GPU_CRYPTO_LATENCY_FACTOR)
            )
            gpu_latency = math.ceil(BATCH / workers) * gpu_instance
            rows.append(
                [
                    name,
                    f"{workers}C+{workers}G",
                    f"{serial_latency / gpu_latency:.1f}x",
                    f"crypto {crypto_fraction:.0%} of prover, x{GPU_CRYPTO_LATENCY_FACTOR} modeled",
                ]
            )
    import random

    from repro.apps import ALL_APPS
    from repro.argument import ArgumentConfig, ZaatarArgument, run_parallel_batch
    from repro.pcp import SoundnessParams

    from _harness import compiled, sizes_key

    name, sizes = next(iter(CASES.items()))
    app = ALL_APPS[name]
    prog = compiled(name, sizes_key(sizes))
    arg = ZaatarArgument(prog, ArgumentConfig(params=SoundnessParams(rho_lin=2, rho=1)))
    rng = random.Random(17)
    batch = [app.generate_inputs(rng, sizes) for _ in range(8)]

    # Happy-path overhead of the resilient engine (docs/RESILIENCE.md):
    # structured outcomes, retry bookkeeping, and liveness scaffolding
    # on an all-ok batch, engine inline vs the plain serial path.
    # Target <2%; the hard assertion is lenient because noise on shared
    # CI runners dwarfs the target — the measured figure lands in the
    # BENCH json for trend tracking.
    t0 = time.perf_counter()
    arg.run_batch(batch)
    serial_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    inline = run_parallel_batch(arg, batch, num_workers=1)
    engine_wall = time.perf_counter() - t0
    overhead = engine_wall / serial_wall - 1
    rows.append(
        [name, "1C engine (measured)", f"{overhead:+.1%}",
         "resilient-engine overhead vs serial, happy path"]
    )
    RESULTS[("fig6", "engine/happy_path_overhead")] = overhead
    RESULTS[("fig6", "engine/instances_failed")] = inline.result.num_failed
    RESULTS[("fig6", "engine/retries")] = inline.retries
    RESULTS[("fig6", "engine/worker_deaths")] = inline.worker_deaths
    RESULTS[("fig6", "engine/resumed")] = inline.resumed
    assert inline.result.all_accepted
    assert inline.result.num_failed == 0 and inline.retries == 0
    assert overhead < 0.25, f"engine happy-path overhead {overhead:.1%}"

    # If real cores exist, also measure true multiprocess speedup.
    if (os.cpu_count() or 1) > 1:
        multi = run_parallel_batch(arg, batch, num_workers=min(4, os.cpu_count()))
        rows.append(
            [name, f"{min(4, os.cpu_count())}C (measured)",
             f"{inline.wall_seconds / multi.wall_seconds:.2f}x",
             "real multiprocess run"]
        )
        RESULTS[("fig6", "engine/measured_multiprocess_speedup")] = (
            inline.wall_seconds / multi.wall_seconds
        )
        RESULTS[("fig6", "engine/multiprocess_instances_failed")] = (
            multi.result.num_failed
        )
        RESULTS[("fig6", "engine/multiprocess_retries")] = multi.retries
        RESULTS[("fig6", "engine/multiprocess_worker_deaths")] = multi.worker_deaths

    print_table(
        f"Figure 6: prover speedup over single core (batch of {BATCH})",
        ["computation", "configuration", "speedup", "note"],
        rows,
    )
    for name in CASES:
        # near-linear scaling: at W=60 with β=60, one instance per
        # worker → speedup equals β exactly in the model
        assert speedups[(name, 60)] == pytest.approx(60.0)
        # monotone in workers
        series = [speedups[(name, w)] for w in WORKER_COUNTS]
        assert series == sorted(series)
        # within 15% of ideal for every configuration (ceil effects only)
        for w in WORKER_COUNTS:
            assert speedups[(name, w)] >= 0.85 * min(w, BATCH), (name, w)
    emit_results("fig6")
