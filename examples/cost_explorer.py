#!/usr/bin/env python3
"""Cost explorer: when does outsourcing pay? (Figure 3 + Figure 7 logic)

Uses the Figure-3 cost model with the paper's own microbenchmark
constants (§5.1, Xeon E5540) to answer, for each benchmark at paper
scale: how expensive is the prover, what does the verifier's setup
cost, and how many instances must be batched before verification beats
local execution — under both Zaatar and the Ginger baseline.

Run:  python examples/cost_explorer.py
"""

from repro.apps import ALL_APPS
from repro.costmodel import (
    PAPER_MICROBENCH_128,
    ComputationProfile,
    breakeven_batch_size,
    ginger_costs,
    zaatar_costs,
)
from repro.field import PrimeField
from repro.pcp import PAPER_PARAMS

#: assumed local execution times at paper scale (order-of-magnitude
#: stand-ins for Figure 5's "local" column, which we cannot measure at
#: paper sizes without the authors' GMP setup)
LOCAL_SECONDS = {
    "pam_clustering": 51.6e-3,
    "root_finding_bisection": 0.8,
    "all_pairs_shortest_path": 8.1e-3,
    "fannkuch": 0.8e-3,
    "longest_common_subsequence": 1.4e-3,
}


def fmt(x: float) -> str:
    if x == float("inf"):
        return "never"
    if x >= 1e6:
        return f"{x:.1e}"
    return f"{x:,.0f}"


def main() -> None:
    field = PrimeField.named("goldilocks")
    print("Figure-3 cost model at scaled sizes, paper's 128-bit microbench constants,")
    print("production soundness (rho_lin=20, rho=8):\n")
    header = (
        f"{'computation':28s} {'prover Z':>10s} {'prover G':>10s} "
        f"{'breakeven Z':>12s} {'breakeven G':>12s}"
    )
    print(header)
    print("-" * len(header))
    for name, app in sorted(ALL_APPS.items()):
        prog = app.compile(field)  # scaled default sizes
        profile = ComputationProfile(
            stats=prog.stats(),
            local_seconds=LOCAL_SECONDS[name],
            num_inputs=prog.num_inputs,
            num_outputs=prog.num_outputs,
        )
        z = zaatar_costs(profile, PAPER_MICROBENCH_128, PAPER_PARAMS)
        g = ginger_costs(profile, PAPER_MICROBENCH_128, PAPER_PARAMS)
        bz = breakeven_batch_size(z, profile.local_seconds)
        bg = breakeven_batch_size(g, profile.local_seconds)
        print(
            f"{name:28s} {z.prover_per_instance:9.2f}s {g.prover_per_instance:9.2f}s "
            f"{fmt(bz.batch_size):>12s} {fmt(bg.batch_size):>12s}"
        )
    print(
        "\nReading: Zaatar's prover and breakeven batch sizes are orders of"
        "\nmagnitude below Ginger's (Figures 4 and 7); batching thousands of"
        "\ninstances is 'plausibly small' (§1) where Ginger needed billions."
    )


if __name__ == "__main__":
    main()
