#!/usr/bin/env python3
"""Adversarial demo: every way a prover can cheat, and how it's caught.

§2.2 enumerates the misbehaviours the protocol defends against; this
demo mounts each one against the same computation and shows which
protocol layer rejects it:

  1. wrong output claim         → divisibility-correction test (PCP)
  2. answers ≠ committed π      → commitment consistency test
  3. non-linear proof function  → linearity tests (PCP)
  4. wrong-form linear function → divisibility-correction test (PCP)

Run:  python examples/cheating_prover.py
"""

import random

from repro.argument import ArgumentConfig, ZaatarArgument
from repro.compiler import compile_source
from repro.crypto import CommitmentProver
from repro.field import PrimeField
from repro.pcp import SoundnessParams
from repro.qap import build_proof_vector

SOURCE = """
input bid[4]
output winner
output second
winner = 0
second = 0
for i in 0..4 {
    if (winner < bid[i]) { second = winner  winner = bid[i] }
    else { if (second < bid[i]) { second = bid[i] } }
}
"""

FIELD = PrimeField.named("goldilocks")
CONFIG = ArgumentConfig(params=SoundnessParams(rho_lin=3, rho=2))


class WrongOutputProver(ZaatarArgument):
    """Claims a different auction winner (pays less!)."""

    def prove_instance(self, inputs, setup, stats):
        sol, c, r, a = super().prove_instance(inputs, setup, stats)
        sol.y[1] = (sol.y[1] - 5) % FIELD.p  # understate the second price
        sol.output_values[1] = sol.y[1]
        return sol, c, r, a


class InconsistentAnswersProver(ZaatarArgument):
    """Commits honestly, then answers queries with doctored values."""

    def prove_instance(self, inputs, setup, stats):
        sol, c, response, answers = super().prove_instance(inputs, setup, stats)
        response.answers[3] = (response.answers[3] + 1) % FIELD.p
        return sol, c, response, response.answers


class NonLinearProver(ZaatarArgument):
    """Answers with a random (consistent) non-linear function."""

    def prove_instance(self, inputs, setup, stats):
        sol, c, response, answers = super().prove_instance(inputs, setup, stats)
        rng = random.Random(0)
        response.answers[:-1] = [
            rng.randrange(FIELD.p) for _ in response.answers[:-1]
        ]
        return sol, c, response, response.answers


class WrongFormProver(ZaatarArgument):
    """Commits to a genuine linear function (z, h') with a bogus h'."""

    def prove_instance(self, inputs, setup, stats):
        schedule, _, request, challenge = setup
        sol = self.program.solve(inputs, check=False)
        vector = build_proof_vector(self.qap, sol.quadratic_witness).vector
        vector[self.qap.n_prime + 2] = (vector[self.qap.n_prime + 2] + 9) % FIELD.p
        prover = CommitmentProver(FIELD, self.config.group(FIELD), vector)
        commitment = prover.commit(request)
        response = prover.answer(challenge)
        return sol, commitment, response, response.answers


def main() -> None:
    program = compile_source(FIELD, SOURCE, name="second-price-auction", bit_width=12)
    bids = [[120, 455, 309, 222]]

    honest = ZaatarArgument(program, CONFIG).run_batch(bids)
    assert honest.all_accepted
    winner, second = honest.instances[0].output_values
    print(f"honest prover: winner bid = {winner}, clearing price = {second}  [ACCEPTED]")

    adversaries = [
        ("wrong output claim", WrongOutputProver),
        ("answers != committed function", InconsistentAnswersProver),
        ("non-linear proof function", NonLinearProver),
        ("linear but wrong-form (bogus h)", WrongFormProver),
    ]
    print("\nadversaries:")
    for label, cls in adversaries:
        result = cls(program, CONFIG).run_batch(bids)
        instance = result.instances[0]
        layer = (
            "commitment consistency"
            if not instance.commitment_ok
            else "PCP checks"
        )
        verdict = "REJECTED" if not instance.accepted else "ACCEPTED (BUG!)"
        print(f"  {label:36s} -> {verdict} by {layer}")
        assert not instance.accepted, label


if __name__ == "__main__":
    main()
