#!/usr/bin/env python3
"""Audit demo: record a verification session, replay it later.

Zaatar is interactive and not publicly verifiable (§6) — checking
needs the verifier's secret randomness.  But because every bit of that
randomness derives from one seed, a session can be recorded and
deterministically replayed: the auditor regenerates the verifier,
feeds it the recorded prover messages, and must reach the identical
verdict.  Useful for dispute resolution ("the cloud swears it proved
this batch") and regression-testing deployed provers.

Run:  python examples/audit_transcript.py
"""

from repro.argument import (
    ArgumentConfig,
    Transcript,
    record_batch,
    replay_transcript,
)
from repro.compiler import compile_source
from repro.field import PrimeField
from repro.pcp import SoundnessParams

SOURCE = """
input readings[6]
output mean_x6
output peak
var acc
acc = 0
peak = 0
for i in 0..6 {
    acc = acc + readings[i]
    peak = max(peak, readings[i])
}
mean_x6 = acc
"""


def main() -> None:
    field = PrimeField.named("goldilocks")
    program = compile_source(field, SOURCE, name="sensor-rollup", bit_width=16)
    config = ArgumentConfig(params=SoundnessParams(rho_lin=3, rho=2))

    batch = [
        [12, 9, 30, 7, 14, 12],
        [100, 90, 95, 110, 105, 100],
    ]
    transcript, accepted = record_batch(program, batch, config)
    assert accepted
    blob = transcript.to_json()
    print(f"session recorded: {len(batch)} instances, {len(blob):,} bytes of transcript")
    for rec in transcript.instances:
        print(f"  inputs={rec.input_values} -> outputs={rec.claimed_outputs}")

    # ... time passes; an auditor receives the transcript ...
    restored = Transcript.from_json(blob)
    verdicts = replay_transcript(program, restored)
    print(f"\naudit replay verdicts: {verdicts}")
    assert verdicts == [True, True]

    # a forged transcript fails the replay
    forged = Transcript.from_json(blob)
    forged.instances[0].claimed_outputs[1] = 9999  # inflate the peak
    print(f"forged-output replay:  {replay_transcript(program, forged)}")
    assert replay_transcript(program, forged) == [False, True]

    tampered = Transcript.from_json(blob)
    tampered.instances[1].answers[0] ^= 1  # bit-flip a recorded answer
    print(f"tampered-answer replay: {replay_transcript(program, tampered)}")
    assert replay_transcript(program, tampered) == [True, False]


if __name__ == "__main__":
    main()
