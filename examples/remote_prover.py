#!/usr/bin/env python3
"""Two-party deployment: a prover server and a verifier client on TCP.

The paper's testbed "connect[s] the verifier and the prover to a local
network" (§5.1).  This demo runs the prover as a server (here in a
background thread; in production, another machine), has the verifier
drive a batched session over the socket, and reports the traffic —
with the §A.1 seed optimization, the verifier uploads Enc(r), the
consistency query, and its inputs; the full PCP query schedule never
crosses the wire.

Run:  python examples/remote_prover.py
"""

from repro.argument import ArgumentConfig, ProverServer, verify_remote
from repro.compiler import compile_source
from repro.field import PrimeField
from repro.pcp import SoundnessParams

SOURCE = """
input portfolio[5]
input prices[5]
output value
output top_holding
var acc
acc = 0
top_holding = 0
for i in 0..5 {
    acc = acc + portfolio[i] * prices[i]
    top_holding = max(top_holding, portfolio[i] * prices[i])
}
value = acc
"""


def main() -> None:
    field = PrimeField.named("goldilocks")
    program = compile_source(field, SOURCE, name="portfolio-valuation", bit_width=24)
    config = ArgumentConfig(params=SoundnessParams(rho_lin=3, rho=2))

    # In production the server runs on the cloud machine; both sides
    # hold the (public) compiled program.
    with ProverServer(program, config) as server:
        host, port = server.address
        print(f"prover serving {program.name} on {host}:{port}")

        batch = [
            [10, 5, 0, 2, 8, 120, 300, 75, 410, 95],
            [1, 1, 1, 1, 1, 100, 100, 100, 100, 100],
        ]
        result = verify_remote(program, batch, server.address, config)

        print(f"\nverified {len(batch)} instances over TCP:")
        for inputs, instance in zip(batch, result.instances):
            status = "ACCEPTED" if instance.accepted else "REJECTED"
            value, top = instance.output_values
            print(f"  value={value:>6}  top holding={top:>5}  [{status}]")
        assert result.all_accepted

        print(
            f"\ntraffic: {result.bytes_sent:,} B uploaded "
            f"(Enc(r) + inputs + one consistency query; PCP queries come "
            f"from the shared seed), {result.bytes_received:,} B downloaded"
        )


if __name__ == "__main__":
    main()
