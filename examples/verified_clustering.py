#!/usr/bin/env python3
"""Verified PAM clustering — the paper's benchmark (a).

Scenario: a scientist outsources clustering of many experiment batches
(the data-parallel, repeated-structure workload the paper's §7 points
at: "an abundance of cheap computing power ... a computation structure
that precisely matches the batching requirement").  Each batch returns
the two chosen medoids plus the clustering cost, all proved correct.

Run:  python examples/verified_clustering.py
"""

import random

from repro.apps import PAM
from repro.argument import ArgumentConfig, ZaatarArgument, run_parallel_batch
from repro.field import PrimeField
from repro.pcp import SoundnessParams

SIZES = {"m": 5, "d": 3, "value_bits": 6}


def make_dataset(rng: random.Random) -> list[int]:
    """Two planted clusters in d dimensions, flattened sample-major."""
    m, d = SIZES["m"], SIZES["d"]
    points = []
    for s in range(m):
        center = 5 if s < (m + 1) // 2 else 50
        points.extend(max(0, center + rng.randrange(-3, 4)) for _ in range(d))
    return points


def main() -> None:
    field = PrimeField.named("goldilocks")
    program = PAM.compile(field, SIZES)
    stats = program.stats()
    print(
        f"PAM (m={SIZES['m']}, d={SIZES['d']}) compiled: "
        f"{stats.c_zaatar} constraints, proof vector {stats.u_zaatar} "
        f"(Ginger: {stats.u_ginger})"
    )

    rng = random.Random(7)
    batch = [make_dataset(rng) for _ in range(4)]

    config = ArgumentConfig(params=SoundnessParams(rho_lin=2, rho=1))
    argument = ZaatarArgument(program, config)

    # Distribute the batch across worker processes, as the paper's
    # prover distributes across machines (Figure 6).
    outcome = run_parallel_batch(argument, batch, num_workers=2)
    assert outcome.result.all_accepted

    print(f"\nproved {len(batch)} clustering batches "
          f"on {outcome.num_workers} workers in {outcome.wall_seconds:.1f}s wall:")
    for idx, instance in enumerate(outcome.result.instances):
        i, j, cost = instance.output_values
        print(f"  batch {idx}: medoids = samples ({i}, {j}), cost = {cost}  [verified]")

    # cross-check one result locally (the verifier normally wouldn't!)
    expected = PAM.reference(batch[0], SIZES)
    assert outcome.result.instances[0].output_values == expected
    print("\nlocal recomputation of batch 0 agrees — but with the proof, "
          "the verifier never had to do it.")


if __name__ == "__main__":
    main()
