#!/usr/bin/env python3
"""Verified map phase — the paper's MapReduce motivation (§1, §7).

"Large-scale simulations in scientific computing often have repeated
structure, as does the map phase of MapReduce computations" — the same
mapper Ψ runs over many input shards, which is *exactly* Zaatar's
batching requirement: compile Ψ once, generate queries once, verify
every shard against them.

The mapper here is a word-frequency-style histogrammer: each shard is
a vector of small tokens and the mapper emits per-bucket counts plus
the shard's max-frequency bucket.  A reduce phase (summing histograms)
runs locally at the verifier — it is linear-time in the mapper
outputs, which the verifier already touches (§5.4).

Run:  python examples/verified_mapreduce.py
"""

import random

from repro.argument import ArgumentConfig, ZaatarArgument, transport_costs
from repro.compiler import Builder, compile_program, is_equal, less_than, select
from repro.field import PrimeField
from repro.pcp import SoundnessParams

SHARD_LEN = 12
BUCKETS = 4
NUM_SHARDS = 5


def build_mapper(b: Builder) -> None:
    """counts[k] = |{i : shard[i] == k}|, then argmax bucket."""
    shard = b.inputs(SHARD_LEN)
    counts = [b.constant(0) for _ in range(BUCKETS)]
    for token in shard:
        for k in range(BUCKETS):
            counts[k] = counts[k] + is_equal(b, token, k)
    counts = [b.define(c) for c in counts]
    best_k = b.constant(0)
    best_c = counts[0]
    for k in range(1, BUCKETS):
        bigger = less_than(b, best_c, counts[k], bit_width=8)
        best_c = select(b, bigger, counts[k], best_c)
        best_k = select(b, bigger, k, best_k)
    for c in counts:
        b.output(c)
    b.output(best_k)


def main() -> None:
    field = PrimeField.named("goldilocks")
    mapper = compile_program(field, build_mapper, name="histogram-mapper")
    print(
        f"mapper compiled once: {mapper.quadratic.num_constraints} constraints, "
        f"proof vector {mapper.quadratic.proof_vector_length()} entries"
    )

    rng = random.Random(99)
    shards = [
        [rng.randrange(BUCKETS) for _ in range(SHARD_LEN)] for _ in range(NUM_SHARDS)
    ]

    config = ArgumentConfig(params=SoundnessParams(rho_lin=2, rho=1))
    argument = ZaatarArgument(mapper, config)
    result = argument.run_batch(shards)
    assert result.all_accepted

    print(f"\nmap phase: {NUM_SHARDS} shards verified in one batch")
    totals = [0] * BUCKETS
    for idx, instance in enumerate(result.instances):
        *counts, best = instance.output_values
        for k in range(BUCKETS):
            totals[k] += counts[k]
        print(f"  shard {idx}: counts={counts} hottest bucket={best}  [verified]")

    # the reduce phase is local: linear in already-verified outputs
    print(f"\nreduce (local): total histogram = {totals}")
    expected = [sum(s.count(k) for s in shards) for k in range(BUCKETS)]
    assert totals == expected

    # network accounting for the whole job, seed-optimized transport
    tally, ok = transport_costs(
        ZaatarArgument(mapper, config), shards, mode="seeded"
    )
    assert ok
    print(
        f"network: {tally.verifier_to_prover:,} B to the cloud, "
        f"{tally.prover_to_verifier:,} B back "
        f"(queries derived from a {tally.components['seed']}-byte seed)"
    )


if __name__ == "__main__":
    main()
