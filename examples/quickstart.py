#!/usr/bin/env python3
"""Quickstart: verify an outsourced computation end to end.

The scenario of Figure 1: a verifier V wants y = Ψ(x) from an
untrusted prover P without re-executing Ψ.  Here Ψ is written in the
textual language, compiled to constraints, and verified through the
full Zaatar pipeline — QAP-based linear PCP under the ElGamal linear
commitment, batched over several inputs.

Run:  python examples/quickstart.py
"""

from repro.argument import ArgumentConfig, ZaatarArgument
from repro.compiler import compile_source
from repro.field import PrimeField
from repro.pcp import SoundnessParams

# Ψ: dot product of two vectors, then clamp to a budget.
SOURCE = """
input a[4]
input b[4]
output y
var acc
acc = 0
for i in 0..4 {
    acc = acc + a[i] * b[i]
}
if (acc < 1000) { y = acc } else { y = 1000 }
"""


def main() -> None:
    # 1. Both parties agree on a field and compile Ψ to constraints.
    field = PrimeField.named("goldilocks")
    program = compile_source(field, SOURCE, name="clamped-dot", bit_width=16)
    stats = program.stats()
    print(f"compiled {program.name}:")
    print(f"  Ginger constraints : {stats.c_ginger}")
    print(f"  Zaatar constraints : {stats.c_zaatar} (quadratic form)")
    print(f"  proof vector       : {stats.u_zaatar} entries "
          f"(Ginger would need {stats.u_ginger}: {stats.proof_shrink_factor:.0f}x larger)")

    # 2. The verifier batches several instances (§2.2: query-generation
    #    cost amortizes over the batch).
    batch = [
        [1, 2, 3, 4, 5, 6, 7, 8],      # 70
        [10, 0, 0, 1, 9, 9, 9, 9],     # 99
        [100, 100, 0, 0, 30, 40, 0, 0],  # 7000 → clamped to 1000
    ]

    # 3. Run the argument: prover solves, commits, answers; verifier checks.
    config = ArgumentConfig(params=SoundnessParams(rho_lin=3, rho=2))
    argument = ZaatarArgument(program, config)
    result = argument.run_batch(batch)

    print("\nbatch verification:")
    for inputs, instance in zip(batch, result.instances):
        status = "ACCEPTED" if instance.accepted else "REJECTED"
        print(f"  inputs={inputs} -> y={instance.output_values[0]}  [{status}]")
    assert result.all_accepted

    mean = result.stats.mean_prover()
    print("\nprover cost per instance (Figure-5 decomposition):")
    print(f"  solve constraints : {mean.solve_constraints * 1e3:8.1f} ms")
    print(f"  construct u       : {mean.construct_u * 1e3:8.1f} ms")
    print(f"  crypto ops        : {mean.crypto_ops * 1e3:8.1f} ms")
    print(f"  answer queries    : {mean.answer_queries * 1e3:8.1f} ms")
    print(f"  e2e               : {mean.e2e * 1e3:8.1f} ms")
    v = result.stats.verifier
    print(f"verifier: setup {v.query_setup * 1e3:.1f} ms (amortized over batch), "
          f"{v.per_instance / len(batch) * 1e3:.1f} ms per instance")


if __name__ == "__main__":
    main()
