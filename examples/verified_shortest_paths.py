#!/usr/bin/env python3
"""Verified all-pairs shortest paths — the paper's benchmark (c).

Scenario: a network operator outsources routing-table computation
(Floyd-Warshall over a link-cost matrix) to a cloud provider and wants
the returned distance matrix *proved* correct.  Cloud bugs or
misconfigurations that silently corrupt a routing table are exactly
the failure class verified computation removes.

The demo runs a batch of topologies (batching is the regime where the
verifier wins, §2.2), prints the verified distance matrix, then shows
a tampered result being rejected.

Run:  python examples/verified_shortest_paths.py
"""

import random

from repro.apps import FLOYD_WARSHALL
from repro.apps.floyd_warshall import _infinity
from repro.argument import ArgumentConfig, ZaatarArgument
from repro.field import PrimeField
from repro.pcp import SoundnessParams

SIZES = {"m": 4, "weight_bits": 6}
M = SIZES["m"]


def print_matrix(label: str, flat: list[int], inf: int) -> None:
    print(label)
    for i in range(M):
        row = flat[i * M : (i + 1) * M]
        print("   ", "  ".join("inf" if v >= inf else f"{v:3d}" for v in row))


def main() -> None:
    field = PrimeField.named("goldilocks")
    program = FLOYD_WARSHALL.compile(field, SIZES)
    inf = _infinity(M, SIZES["weight_bits"])
    print(
        f"Floyd-Warshall over {M} nodes compiled to "
        f"{program.quadratic.num_constraints} quadratic-form constraints"
    )

    rng = random.Random(2026)
    batch = [FLOYD_WARSHALL.generate_inputs(rng, SIZES) for _ in range(3)]

    config = ArgumentConfig(params=SoundnessParams(rho_lin=3, rho=2))
    result = ZaatarArgument(program, config).run_batch(batch)
    assert result.all_accepted

    print(f"\nverified {len(batch)} topologies; first one:")
    print_matrix("  link costs:", batch[0], inf)
    print_matrix("  verified distances:", result.instances[0].output_values, inf)

    # A provider that corrupts one distance entry gets caught.
    class TamperingProver(ZaatarArgument):
        def prove_instance(self, inputs, setup, stats):
            sol, c, r, a = super().prove_instance(inputs, setup, stats)
            sol.y[1] = (sol.y[1] + 1) % field.p       # corrupt one route
            sol.output_values[1] = sol.y[1]
            return sol, c, r, a

    bad = TamperingProver(program, config).run_batch(batch[:1])
    verdict = "REJECTED" if not bad.all_accepted else "accepted (BUG!)"
    print(f"\ntampered distance matrix: {verdict}")
    assert not bad.all_accepted


if __name__ == "__main__":
    main()
